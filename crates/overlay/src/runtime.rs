//! The simulated overlay runtime.
//!
//! The control plane is **delta-driven**: one long-lived
//! [`PhysicalMapper`] (the Hilbert-DHT catalog by default, see
//! [`MapperBackend`]) serves deployment, local/full re-optimization, plan
//! rewriting, and failure evacuation. Each churn tick refreshes only the
//! cost points of the nodes the churn actually touched
//! ([`ChurnProcess::tick_dirty`] → [`CostSpace::update_scalars`]) and
//! forwards each real change to the mapper (`update_node`), so per-tick
//! control-plane work tracks the churned-node count instead of the overlay
//! size: `O(dims)` per refreshed point plus one catalog re-registration
//! per changed point (truly `O(log n)` on the B-tree-backed ring). At
//! scale, pair a fixed-budget churn process ([`ChurnProcess::SparseWalk`])
//! with the default DHT backend; a full-universe walk re-registers every
//! node every tick by definition. Node failures unregister from the mapper
//! (`remove_node`): liveness filtering lives in the catalog, not in
//! per-call-site wrapper mappers. Membership itself can also grow over
//! ticks ([`DeploymentModel::Wave`]): pending nodes arrive on a per-tick
//! budget and register through the same maintenance contract
//! (`add_node`), so bring-up is incremental rather than one bulk build.
//!
//! Re-optimization is **dirty-driven** by default
//! ([`RuntimeConfig::incremental_reopt`]): a runtime-maintained relevance
//! index ([`sbon_core::reopt::relevance`]) remembers the exact read set of
//! every no-op circuit evaluation and invalidates it from the control-plane
//! deltas above, so each adaptation pass evaluates only the circuits a
//! delta could actually have affected — bit-identically to evaluating
//! everything. The evaluations themselves are read-only (per-circuit
//! [`MapperReadView`]s) and shard across the worker pool; mutations commit
//! serially in circuit order, so thread count never changes results.

use std::collections::{HashMap, VecDeque};

use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

use sbon_coords::vivaldi::{LandmarkPlacer, VivaldiConfig, VivaldiEmbedding};
use sbon_core::circuit::{Circuit, Placement, ServiceId};
use sbon_core::costspace::{CostSpace, CostSpaceBuilder};
use sbon_core::multiquery::{CircuitId, MultiQueryOptimizer, ReuseScope};
use sbon_core::optimizer::{IntegratedOptimizer, OptimizerConfig, QuerySpec};
use sbon_core::placement::{
    DhtMapper, DhtMapperConfig, LiveOracleMapper, MapperReadView, PhysicalMapper, ReadObservation,
    RelaxationPlacer, RoutedMapper,
};
use sbon_core::reopt::relevance::{ReadSet, RelevanceIndex, ReoptKind};
use sbon_core::reopt::{reoptimize_full, reoptimize_local, FullReoptOutcome, ReoptPolicy};
use sbon_dht::catalog::CatalogStats;
use sbon_dht::proto::{ProtoConfig, RoutedStats};
use sbon_netsim::dijkstra::all_pairs_latency;
use sbon_netsim::graph::{EdgeId, Graph, NodeId};
use sbon_netsim::latency::{LatencyMatrix, LatencyProvider};
use sbon_netsim::lazy::{LazyLatency, LazyLatencyStats};
use sbon_netsim::load::{ChurnProcess, LoadModel, NodeAttrs};
use sbon_netsim::rng::derive_rng;
use sbon_netsim::sim::{EventQueue, SimTime};
use sbon_netsim::topology::Topology;
use sbon_obs::{
    CounterId, FieldValue, FlightRecorder, GaugeId, HistId, Histogram, HistogramSnapshot,
    JsonlSink, MetricsRegistry, MetricsSnapshot, NullSink, ObsConfig, SinkSpec, SpanId, TraceSink,
    Tracer, WallTimer,
};

use crate::report::{RunReport, Sample};

/// Transient latency inflation applied each tick, at **underlay-edge**
/// granularity on every [`LatencyBackend`].
///
/// Each tick draws `edges_per_tick` edges (with replacement) from the
/// topology graph and rescales their latency by a factor from
/// `factor_range`. Congestion on a link perturbs every path crossing it.
/// Mean-reverting: the perturbed latency is clamped to `band` × the edge's
/// base latency, so jitter models congestion episodes rather than an
/// unboundedly drifting network.
///
/// Both backends sample the identical delta sequence from the shared run
/// RNG and derive their pairwise latencies from the same mutated graph
/// (re-running all-pairs Dijkstra under `Dense`, repairing cached rows in
/// place under `Lazy`), so a jittered run is bit-identical across
/// backends.
#[derive(Clone, Copy, Debug)]
pub struct JitterModel {
    /// Underlay edges rescaled per tick (drawn with replacement; repeated
    /// draws of one edge compose within the tick).
    pub edges_per_tick: usize,
    /// Multiplicative factor range `(lo, hi)` applied to an edge's latency.
    pub factor_range: (f64, f64),
    /// Allowed `(min, max)` multiple of the edge's base latency.
    pub band: (f64, f64),
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel { edges_per_tick: 0, factor_range: (0.7, 1.45), band: (0.5, 3.0) }
    }
}

/// Ground-truth latency data structure used by the runtime.
///
/// `Dense` materializes the all-pairs matrix up front — `O(n²)` memory,
/// `O(n·(m + n log n))` precompute — and stays the default for the paper's
/// ≤600-node scale. `Lazy` keeps the topology graph and computes per-source
/// shortest-path rows on demand ([`LazyLatency`]), which is what makes
/// thousand-node runs with churn tractable; see the `sbon_netsim::lazy`
/// module docs for the invalidation contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatencyBackend {
    /// Eager all-pairs matrix (the historical behaviour).
    #[default]
    Dense,
    /// Demand-driven per-source rows with churn-aware invalidation.
    Lazy,
}

/// Physical-mapping backend owned by the runtime.
///
/// The runtime keeps **one** long-lived mapper in sync with the cost space
/// (deltas via `update_node`, failures via `remove_node`) and threads it
/// through every control-plane path: deployment, local re-optimization,
/// plan rewriting, full re-optimization, and failure evacuation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MapperBackend {
    /// The paper-faithful decentralized mapper: Hilbert-keyed DHT catalog,
    /// `O(log n)` routed hops per mapped service. The default.
    Dht {
        /// Per-dimension grid resolution. Capped at runtime-build time to
        /// `128 / dims` so high-dimensional cost spaces (many Vivaldi
        /// dimensions) degrade to a coarser grid instead of overflowing
        /// the 128-bit ring.
        bits: u32,
        /// Successor-list correction window.
        scan_width: usize,
    },
    /// Exhaustive oracle scan over live nodes — `O(n)` per mapped service.
    /// The centralized verification backend the DHT answers are measured
    /// against.
    Oracle,
    /// The DHT catalog driven through the message-passing control plane
    /// ([`sbon_dht::proto`]): placements stay bit-identical to
    /// [`MapperBackend::Dht`], but every lookup and registration is also
    /// replayed as routed `ControlMsg` traffic over the live latency
    /// provider, surfacing *experienced* per-query latency (ms), message
    /// counts, and retry behaviour through
    /// [`ControlPlaneStats`] / [`OverlayRuntime::routed_stats`].
    Routed {
        /// Per-dimension grid resolution (capped like the `Dht` variant).
        bits: u32,
        /// Successor-list correction window.
        scan_width: usize,
        /// Timeout / retry policy for the routed messages.
        proto: ProtoConfig,
    },
}

impl Default for MapperBackend {
    fn default() -> Self {
        MapperBackend::Dht { bits: 12, scan_width: 8 }
    }
}

/// How the overlay's membership comes up.
///
/// The historical model registers every node with the mapper during
/// construction — one `O(n log n)` bulk build. [`DeploymentModel::Wave`]
/// instead starts from an `initial` subset and **grows the overlay over
/// ticks**: each churn tick up to `joins_per_tick` pending nodes arrive (in
/// a deterministic shuffled order) and register with the runtime's mapper
/// through the [`PhysicalMapper::add_node`] maintenance contract — an
/// `O(log n)` catalog join per arrival, so bring-up cost is spread across
/// the wave instead of paid in one construction-time spike. Nodes that have
/// not arrived host nothing and are never mapped to; churn reports for them
/// are ignored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeploymentModel {
    /// Register every node at construction time (the historical behaviour).
    #[default]
    Full,
    /// Start with `initial` nodes (clamped to `1..=n`), then admit up to
    /// `joins_per_tick` pending nodes per churn tick until all have
    /// arrived.
    Wave {
        /// Nodes registered at construction time.
        initial: usize,
        /// Pending nodes admitted per churn tick.
        joins_per_tick: usize,
    },
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Simulation tick (ms): churn + accounting granularity.
    tick_ms: f64,
    /// Run length (ms).
    horizon_ms: f64,
    /// Local re-optimization cadence (ms); `None` disables adaptation.
    reopt_interval_ms: Option<f64>,
    /// Full re-optimization cadence (ms); `None` disables full re-opt.
    full_reopt_interval_ms: Option<f64>,
    /// Local plan-rewrite cadence (ms); `None` disables rewriting. The
    /// paper's "limited plan re-writing" (§3.3): cheaper than full re-opt,
    /// explores only the rewrite neighbourhood of the running plan.
    rewrite_interval_ms: Option<f64>,
    /// Thresholds for migrations / replacements.
    policy: ReoptPolicy,
    /// Load churn process applied each tick.
    churn: ChurnProcess,
    /// Optional latency jitter applied each tick.
    latency_jitter: Option<JitterModel>,
    /// Usage·seconds charged per migration (state transfer).
    migration_penalty: f64,
    /// Usage·seconds charged per full replacement.
    replacement_penalty: f64,
    /// Initial load model.
    initial_load: LoadModel,
    /// Scalar scale of the latency+load cost space.
    load_scale: f64,
    /// Vivaldi settings for the embedding built at start-up.
    vivaldi: VivaldiConfig,
    /// Ground-truth latency backend.
    latency_backend: LatencyBackend,
    /// Cap on resident shortest-path rows under [`LatencyBackend::Lazy`]
    /// (`None` = unbounded). Bounds steady-state latency memory at
    /// `O(cap · n)` instead of `O(n²)`; ignored by the dense backend.
    lazy_row_cache: Option<usize>,
    /// Physical-mapping backend for the runtime-owned mapper.
    mapper_backend: MapperBackend,
    /// Membership bring-up model (all-at-once or deployment wave).
    deployment: DeploymentModel,
    /// Multi-query reuse scope for arriving queries.
    ///
    /// Anything other than [`ReuseScope::None`] routes every `deploy`
    /// through a runtime-owned [`MultiQueryOptimizer`]: arriving queries may
    /// attach to running operator subtrees (a *subscription* refcount on the
    /// instance), departures release shared services only when their
    /// refcount drains to zero, and usage accounting charges each circuit
    /// its **marginal** links only. A subscribed instance is pinned in its
    /// owner's circuit (tenancy makes it load-bearing), so local re-opt
    /// stops migrating it, and the pin lifts when the last subscriber
    /// departs; plan-replacement adaptation (rewrite / full re-opt) is
    /// skipped only for *tenancy-entangled* circuits (ones that borrow
    /// shared subtrees or have subscribed instances) — replacing such a
    /// plan would strand its tenants. Untenanted circuits still adapt,
    /// re-registering their instances after the swap.
    reuse: ReuseScope,
    /// Worker threads for the embarrassingly parallel per-tick work
    /// (shortest-path row computation, scalar cost refresh): `0` sizes the
    /// pool to the machine's available parallelism, `1` runs everything on
    /// the calling thread, any other value is an explicit pool size.
    ///
    /// Thread count never changes results: parallel stages compute pure
    /// values and commit them serially in a deterministic order, so a run
    /// at any `threads` setting is bit-identical to a serial one.
    threads: usize,
    /// Dirty-driven re-optimization (default `true`): each adaptation pass
    /// evaluates only circuits whose re-opt inputs changed since their last
    /// no-op evaluation, per the runtime-maintained
    /// [`RelevanceIndex`](sbon_core::reopt::relevance::RelevanceIndex).
    /// Skipping is bit-identical to evaluating everything (see the
    /// [`sbon_core::reopt`] module docs for the closed-input-set argument);
    /// `false` restores the evaluate-everything scan, useful as the
    /// equivalence baseline.
    incremental_reopt: bool,
    /// Per-evaluation mapping memo (default `true`): within one circuit
    /// evaluation, repeated physical-mapping lookups of bit-identical ideal
    /// points are answered from a local memo instead of re-routing through
    /// the catalog. Answers are identical by construction (the catalog
    /// never mutates mid-evaluation); only the per-lookup traffic changes.
    mapping_memo: bool,
    /// Observability: virtual-time span tracing and the flight recorder
    /// (see [`sbon_obs::ObsConfig`]). Defaults to everything off — the
    /// metrics registry backing the stats views runs regardless, at the
    /// cost of the plain field increments it replaced. Instrumentation is
    /// **bit-invisible**: an instrumented run's [`RunReport`] is identical
    /// to an uninstrumented one.
    obs: ObsConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            tick_ms: 1_000.0,
            horizon_ms: 60_000.0,
            reopt_interval_ms: Some(5_000.0),
            full_reopt_interval_ms: None,
            rewrite_interval_ms: None,
            policy: ReoptPolicy::default(),
            churn: ChurnProcess::RandomWalk { std_dev: 0.05 },
            latency_jitter: None,
            migration_penalty: 50.0,
            replacement_penalty: 200.0,
            initial_load: LoadModel::Random { lo: 0.0, hi: 0.6 },
            load_scale: 100.0,
            vivaldi: VivaldiConfig::default(),
            latency_backend: LatencyBackend::default(),
            lazy_row_cache: None,
            mapper_backend: MapperBackend::default(),
            deployment: DeploymentModel::default(),
            reuse: ReuseScope::None,
            threads: 0,
            incremental_reopt: true,
            mapping_memo: true,
            obs: ObsConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a [`RuntimeConfigBuilder`] seeded with the defaults — the
    /// construction path. The fields are private; read access goes through
    /// the getters below.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { config: RuntimeConfig::default() }
    }

    /// Simulation tick (ms).
    pub fn tick_ms(&self) -> f64 {
        self.tick_ms
    }

    /// Run length (ms).
    pub fn horizon_ms(&self) -> f64 {
        self.horizon_ms
    }

    /// Local re-optimization cadence (ms); `None` = adaptation disabled.
    pub fn reopt_interval_ms(&self) -> Option<f64> {
        self.reopt_interval_ms
    }

    /// Full re-optimization cadence (ms); `None` = disabled.
    pub fn full_reopt_interval_ms(&self) -> Option<f64> {
        self.full_reopt_interval_ms
    }

    /// Plan-rewrite cadence (ms); `None` = disabled.
    pub fn rewrite_interval_ms(&self) -> Option<f64> {
        self.rewrite_interval_ms
    }

    /// Migration / replacement thresholds.
    pub fn policy(&self) -> ReoptPolicy {
        self.policy
    }

    /// Load churn process applied each tick.
    pub fn churn(&self) -> &ChurnProcess {
        &self.churn
    }

    /// Per-tick latency jitter; `None` = disabled.
    pub fn latency_jitter(&self) -> Option<JitterModel> {
        self.latency_jitter
    }

    /// Usage·seconds charged per migration.
    pub fn migration_penalty(&self) -> f64 {
        self.migration_penalty
    }

    /// Usage·seconds charged per full replacement.
    pub fn replacement_penalty(&self) -> f64 {
        self.replacement_penalty
    }

    /// Initial load model.
    pub fn initial_load(&self) -> &LoadModel {
        &self.initial_load
    }

    /// Scalar scale of the latency+load cost space.
    pub fn load_scale(&self) -> f64 {
        self.load_scale
    }

    /// Vivaldi settings for the start-up embedding.
    pub fn vivaldi(&self) -> &VivaldiConfig {
        &self.vivaldi
    }

    /// Ground-truth latency backend.
    pub fn latency_backend(&self) -> LatencyBackend {
        self.latency_backend
    }

    /// Resident-row cap under [`LatencyBackend::Lazy`].
    pub fn lazy_row_cache(&self) -> Option<usize> {
        self.lazy_row_cache
    }

    /// Physical-mapping backend.
    pub fn mapper_backend(&self) -> MapperBackend {
        self.mapper_backend
    }

    /// Membership bring-up model.
    pub fn deployment(&self) -> DeploymentModel {
        self.deployment
    }

    /// Multi-query reuse scope.
    pub fn reuse(&self) -> ReuseScope {
        self.reuse
    }

    /// Worker-thread count (`0` = auto, `1` = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether dirty-driven re-optimization is on.
    pub fn incremental_reopt(&self) -> bool {
        self.incremental_reopt
    }

    /// Whether the per-evaluation mapping memo is on.
    pub fn mapping_memo(&self) -> bool {
        self.mapping_memo
    }

    /// Observability configuration (tracing, flight recorder).
    pub fn obs(&self) -> &ObsConfig {
        &self.obs
    }
}

/// Fluent constructor for [`RuntimeConfig`]; see [`RuntimeConfig::builder`].
///
/// Every setter consumes and returns the builder, so configurations read as
/// one chain:
///
/// ```
/// use sbon_overlay::runtime::{JitterModel, LatencyBackend, RuntimeConfig};
///
/// let config = RuntimeConfig::builder()
///     .horizon_ms(30_000.0)
///     .latency_backend(LatencyBackend::Lazy)
///     .latency_jitter(JitterModel { edges_per_tick: 50, ..Default::default() })
///     .reopt_interval_ms(None)
///     .build();
/// assert_eq!(config.horizon_ms(), 30_000.0);
/// assert!(config.reopt_interval_ms().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the simulation tick (ms).
    pub fn tick_ms(mut self, v: f64) -> Self {
        self.config.tick_ms = v;
        self
    }

    /// Sets the run length (ms).
    pub fn horizon_ms(mut self, v: f64) -> Self {
        self.config.horizon_ms = v;
        self
    }

    /// Sets the local re-optimization cadence; `None` disables adaptation.
    pub fn reopt_interval_ms(mut self, v: impl Into<Option<f64>>) -> Self {
        self.config.reopt_interval_ms = v.into();
        self
    }

    /// Sets the full re-optimization cadence; `None` disables full re-opt.
    pub fn full_reopt_interval_ms(mut self, v: impl Into<Option<f64>>) -> Self {
        self.config.full_reopt_interval_ms = v.into();
        self
    }

    /// Sets the plan-rewrite cadence; `None` disables rewriting.
    pub fn rewrite_interval_ms(mut self, v: impl Into<Option<f64>>) -> Self {
        self.config.rewrite_interval_ms = v.into();
        self
    }

    /// Sets the migration / replacement thresholds.
    pub fn policy(mut self, v: ReoptPolicy) -> Self {
        self.config.policy = v;
        self
    }

    /// Sets the load churn process.
    pub fn churn(mut self, v: ChurnProcess) -> Self {
        self.config.churn = v;
        self
    }

    /// Sets the per-tick latency jitter; `None` disables it.
    pub fn latency_jitter(mut self, v: impl Into<Option<JitterModel>>) -> Self {
        self.config.latency_jitter = v.into();
        self
    }

    /// Sets the usage·seconds charged per migration.
    pub fn migration_penalty(mut self, v: f64) -> Self {
        self.config.migration_penalty = v;
        self
    }

    /// Sets the usage·seconds charged per full replacement.
    pub fn replacement_penalty(mut self, v: f64) -> Self {
        self.config.replacement_penalty = v;
        self
    }

    /// Sets the initial load model.
    pub fn initial_load(mut self, v: LoadModel) -> Self {
        self.config.initial_load = v;
        self
    }

    /// Sets the scalar scale of the latency+load cost space.
    pub fn load_scale(mut self, v: f64) -> Self {
        self.config.load_scale = v;
        self
    }

    /// Sets the Vivaldi settings for the start-up embedding.
    pub fn vivaldi(mut self, v: VivaldiConfig) -> Self {
        self.config.vivaldi = v;
        self
    }

    /// Sets the ground-truth latency backend.
    pub fn latency_backend(mut self, v: LatencyBackend) -> Self {
        self.config.latency_backend = v;
        self
    }

    /// Caps resident shortest-path rows under [`LatencyBackend::Lazy`];
    /// `None` leaves the cache unbounded.
    pub fn lazy_row_cache(mut self, v: impl Into<Option<usize>>) -> Self {
        self.config.lazy_row_cache = v.into();
        self
    }

    /// Sets the physical-mapping backend.
    pub fn mapper_backend(mut self, v: MapperBackend) -> Self {
        self.config.mapper_backend = v;
        self
    }

    /// Sets the membership bring-up model.
    pub fn deployment(mut self, v: DeploymentModel) -> Self {
        self.config.deployment = v;
        self
    }

    /// Sets the multi-query reuse scope.
    pub fn reuse(mut self, v: ReuseScope) -> Self {
        self.config.reuse = v;
        self
    }

    /// Sets the worker-thread count (`0` = auto, `1` = serial). Thread
    /// count never changes results — see [`RuntimeConfig::threads`].
    pub fn threads(mut self, v: usize) -> Self {
        self.config.threads = v;
        self
    }

    /// Enables/disables dirty-driven re-optimization — see
    /// [`RuntimeConfig::incremental_reopt`].
    pub fn incremental_reopt(mut self, v: bool) -> Self {
        self.config.incremental_reopt = v;
        self
    }

    /// Enables/disables the per-evaluation mapping memo — see
    /// [`RuntimeConfig::mapping_memo`].
    pub fn mapping_memo(mut self, v: bool) -> Self {
        self.config.mapping_memo = v;
        self
    }

    /// Sets the observability configuration — see [`sbon_obs::ObsConfig`].
    /// Instrumentation never changes results, only what gets reported.
    pub fn obs(mut self, v: ObsConfig) -> Self {
        self.config.obs = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> RuntimeConfig {
        self.config
    }
}

/// Handle to a deployed circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CircuitHandle(pub usize);

/// Internal per-circuit state.
struct Deployed {
    handle: CircuitHandle,
    query: QuerySpec,
    running_plan: sbon_query::plan::LogicalPlan,
    circuit: Circuit,
    placement: Placement,
    /// Registry id when the circuit was deployed through the multi-query
    /// optimizer (`RuntimeConfig::reuse` ≠ `None`).
    mq_id: Option<CircuitId>,
    /// `shared[service]` — paid for by another circuit's instance; empty
    /// when the circuit was deployed standalone. Usage accounting skips
    /// links whose downstream endpoint is shared.
    shared: Vec<bool>,
}

/// A departed circuit's subtree kept alive because other circuits still
/// subscribe to one of its operator instances. Its charged links keep
/// accruing network usage until the last subscriber releases.
struct RetainedShared {
    owner: CircuitId,
    circuit: Circuit,
    placement: Placement,
    /// The owner's own shared mask (links it never paid for stay unpaid).
    owner_shared: Vec<bool>,
    /// Still-subscribed instance roots.
    roots: Vec<ServiceId>,
    /// `charge[link]` — the link still carries data for a retained subtree
    /// and is billed to this entry.
    charge: Vec<bool>,
}

/// `mask[service]`: the service is one of `roots` or sits beneath one.
fn subtree_mask(circuit: &Circuit, roots: &[ServiceId]) -> Vec<bool> {
    fn mark(circuit: &Circuit, sid: ServiceId, flags: &mut [bool]) {
        for child in circuit.children(sid) {
            flags[child.index()] = true;
            mark(circuit, child, flags);
        }
    }
    let mut in_subtree = vec![false; circuit.len()];
    for &root in roots {
        in_subtree[root.index()] = true;
        mark(circuit, root, &mut in_subtree);
    }
    in_subtree
}

/// `charge[link]`: the link feeds a subtree rooted at one of `roots` and the
/// owner actually paid for it (it is not inside a subtree the owner itself
/// borrowed).
fn charge_mask(circuit: &Circuit, roots: &[ServiceId], owner_shared: &[bool]) -> Vec<bool> {
    let in_subtree = subtree_mask(circuit, roots);
    circuit
        .links()
        .iter()
        .map(|l| {
            in_subtree[l.to.index()] && !owner_shared.get(l.to.index()).copied().unwrap_or(false)
        })
        .collect()
}

/// Accumulated query-lifecycle accounting: arrivals, departures, and the
/// reuse economics (marginal vs standalone cost of every deployed query).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryLifecycleStats {
    /// Successful `deploy` calls.
    pub arrivals: usize,
    /// `undeploy` calls.
    pub departures: usize,
    /// Arrivals that attached to ≥ 1 running operator instance.
    pub reuse_hits: usize,
    /// Running instances attached to, summed over arrivals.
    pub reused_services: usize,
    /// Σ marginal network usage at deploy time (standalone usage minus what
    /// reuse made free; equals `standalone_usage` when reuse is off).
    pub marginal_usage: f64,
    /// Σ standalone network usage the same queries would have cost with no
    /// reuse.
    pub standalone_usage: f64,
}

/// In-flight state of a simulation run, for tick-at-a-time driving.
///
/// [`OverlayRuntime::run`] is a thin wrapper over the session API; external
/// drivers (the `sbon_workload` scenario engine) interleave
/// [`OverlayRuntime::advance_ticks`] with mid-run
/// [`OverlayRuntime::deploy`] / [`OverlayRuntime::undeploy`] calls.
pub struct RunSession {
    queue: EventQueue<Event>,
    report: RunReport,
    cumulative: f64,
    horizon: SimTime,
}

impl RunSession {
    /// Simulated time of the last processed event, in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.queue.now().millis()
    }

    /// Ticks sampled so far.
    pub fn ticks_done(&self) -> usize {
        self.report.samples.len()
    }
}

/// Events driving the simulation.
enum Event {
    Tick,
    LocalReopt,
    FullReopt,
    Rewrite,
    Fail(NodeId),
}

/// The runtime-owned mapper behind [`MapperBackend`].
// The runtime holds exactly one of these for its whole lifetime, so the
// Dht/Oracle size gap costs one allocation's worth of slack, not N.
#[allow(clippy::large_enum_variant)]
enum MapperState {
    Dht(DhtMapper),
    Oracle(LiveOracleMapper),
    Routed(RoutedMapper),
}

impl MapperState {
    fn as_dyn(&mut self) -> &mut dyn PhysicalMapper {
        match self {
            MapperState::Dht(m) => m,
            MapperState::Oracle(m) => m,
            MapperState::Routed(m) => m,
        }
    }

    /// A read-only view for one circuit evaluation: answers exactly like
    /// the live mapper, accumulates traffic/read-set observations locally.
    /// The routed backend hands out the same catalog-only view the DHT
    /// backend does — routed traffic is replayed only for live-path
    /// lookups, on the serial settle points.
    fn read_view(&self, memo: bool) -> MapperReadView<'_> {
        match self {
            MapperState::Dht(m) => MapperReadView::Dht(m.read_view(memo)),
            MapperState::Oracle(m) => MapperReadView::Oracle(m.read_view()),
            MapperState::Routed(m) => MapperReadView::Dht(m.read_view(memo)),
        }
    }

    /// Folds a read view's deferred catalog traffic back onto the live
    /// mapper (a no-op for the oracle, which has no traffic counters).
    fn charge_observed(&mut self, obs: &ReadObservation) {
        match self {
            MapperState::Dht(m) => m.charge_stats(obs.stats),
            MapperState::Oracle(_) => {}
            MapperState::Routed(m) => m.charge_stats(obs.stats),
        }
    }
}

/// Accumulated control-plane accounting of a runtime, split so the cost of
/// *maintaining* the optimizer's view (coordinate refresh + mapper sync)
/// is visible separately from the cost of *using* it (re-optimization and
/// evacuation mapping) and from plain latency-provider reads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlPlaneStats {
    /// Churn ticks processed.
    pub ticks: usize,
    /// Nodes the churn process reported touched (dirty set sizes, summed).
    pub dirty_nodes: usize,
    /// Cost points that actually changed — each one cost a mapper
    /// re-registration (`update_node`).
    pub points_updated: usize,
    /// Nodes that arrived through the deployment wave — each one cost a
    /// mapper registration (`add_node`).
    pub nodes_joined: usize,
    /// Wall time admitting deployment-wave arrivals (mapper `add_node`).
    pub join_ns: u128,
    /// Wall time in coordinate maintenance: dirty-set scalar refresh plus
    /// mapper re-registrations (and relevance-index invalidation).
    pub refresh_ns: u128,
    /// Wall time in local re-optimization passes (per-service migration
    /// checks).
    pub local_reopt_ns: u128,
    /// Wall time in plan-rewrite passes (rewrite-neighbourhood
    /// exploration).
    pub rewrite_ns: u128,
    /// Wall time in full re-optimization passes.
    pub full_reopt_ns: u128,
    /// Wall time in failure handling: teardown cascade plus service
    /// evacuation.
    pub evac_ns: u128,
    /// Circuit evaluations actually run by the adaptation passes (summed
    /// over local/rewrite/full events).
    pub reopt_evaluated: usize,
    /// Circuit evaluations skipped because the relevance index proved the
    /// circuit's re-opt inputs unchanged since its last no-op evaluation.
    pub reopt_skipped: usize,
    /// Wall time reading the ground-truth latency provider for usage
    /// accounting (the data-plane proxy, for comparison).
    pub usage_ns: u128,
    /// Routed control-plane messages sent (requests, replies, acks).
    /// Populated only under [`MapperBackend::Routed`], from the settled
    /// message traffic; zero otherwise.
    pub routed_messages: u64,
    /// Routed lookups completed.
    pub routed_lookups: u64,
    /// Routed retransmissions after first sends.
    pub routed_retries: u64,
    /// Routed retransmit timers that fired.
    pub routed_timeouts: u64,
    /// `routed_hop_histogram[h]` = routed lookups that took `h` round
    /// trips.
    pub routed_hop_histogram: Vec<u64>,
    /// Median experienced routed-lookup latency (simulated ms); `None`
    /// before the first settled lookup (and always under other backends).
    pub routed_p50_latency_ms: Option<f64>,
    /// Tail (p99) experienced routed-lookup latency (simulated ms).
    pub routed_p99_latency_ms: Option<f64>,
}

impl ControlPlaneStats {
    /// Total adaptation wall time: the former `reopt_ns` aggregate — local
    /// + rewrite + full re-opt passes plus failure evacuation.
    pub fn adaptation_ns(&self) -> u128 {
        self.local_reopt_ns + self.rewrite_ns + self.full_reopt_ns + self.evac_ns
    }

    /// A multi-line human-readable breakdown: maintenance volume, wall time
    /// per control-plane phase, re-opt dirty-filter effectiveness, and —
    /// when the routed backend ran — the experienced message traffic. The
    /// examples print this instead of hand-rolling their own tables.
    pub fn summary(&self) -> String {
        let ms = |ns: u128| ns as f64 / 1e6;
        let mut out = format!(
            "control plane: {} ticks, {} dirty nodes, {} points re-registered, {} joined\n",
            self.ticks, self.dirty_nodes, self.points_updated, self.nodes_joined
        );
        out.push_str(&format!(
            "  wall time (ms): join {:.1} | refresh {:.1} | local re-opt {:.1} | rewrite {:.1} \
             | full re-opt {:.1} | evac {:.1} | usage reads {:.1}\n",
            ms(self.join_ns),
            ms(self.refresh_ns),
            ms(self.local_reopt_ns),
            ms(self.rewrite_ns),
            ms(self.full_reopt_ns),
            ms(self.evac_ns),
            ms(self.usage_ns),
        ));
        let candidates = self.reopt_evaluated + self.reopt_skipped;
        if candidates > 0 {
            out.push_str(&format!(
                "  re-opt: {} evaluated, {} skipped clean ({:.1}% saved)\n",
                self.reopt_evaluated,
                self.reopt_skipped,
                100.0 * self.reopt_skipped as f64 / candidates as f64,
            ));
        }
        if self.routed_messages > 0 {
            let hops: u64 =
                self.routed_hop_histogram.iter().enumerate().map(|(h, &c)| h as u64 * c).sum();
            let mean_hops = if self.routed_lookups > 0 {
                hops as f64 / self.routed_lookups as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  routed: {} messages, {} lookups ({:.2} hops/lookup), {} retries, \
                 {} timeouts, p50 {:.2} ms, p99 {:.2} ms\n",
                self.routed_messages,
                self.routed_lookups,
                mean_hops,
                self.routed_retries,
                self.routed_timeouts,
                self.routed_p50_latency_ms.unwrap_or(0.0),
                self.routed_p99_latency_ms.unwrap_or(0.0),
            ));
        }
        out
    }
}

impl std::fmt::Display for ControlPlaneStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Registry handles for every control-plane and lifecycle counter the
/// runtime maintains. Resolved once at construction; the hot paths
/// increment through these (a plain `Vec` index in the registry), so the
/// migration off ad-hoc struct fields costs nothing measurable.
struct StatHandles {
    ticks: CounterId,
    dirty_nodes: CounterId,
    points_updated: CounterId,
    nodes_joined: CounterId,
    join_ns: CounterId,
    refresh_ns: CounterId,
    local_reopt_ns: CounterId,
    rewrite_ns: CounterId,
    full_reopt_ns: CounterId,
    evac_ns: CounterId,
    reopt_evaluated: CounterId,
    reopt_skipped: CounterId,
    usage_ns: CounterId,
    arrivals: CounterId,
    departures: CounterId,
    reuse_hits: CounterId,
    reused_services: CounterId,
    marginal_usage: GaugeId,
    standalone_usage: GaugeId,
    dirty_per_tick: HistId,
}

/// The runtime's observability state: the metrics registry backing the
/// [`ControlPlaneStats`] / [`QueryLifecycleStats`] views, the optional
/// virtual-time tracer, and the optional flight recorder.
///
/// **Bit-invisibility contract:** nothing in here feeds back into the
/// simulation. Counters are written, never read by control flow; spans are
/// emitted only from the serial orchestration paths with `SimTime`
/// stamps; the flight recorder is written and dumped, never consulted.
/// An instrumented run's [`RunReport`] is bit-identical to a bare one.
struct RuntimeObs {
    registry: MetricsRegistry,
    h: StatHandles,
    tracer: Option<Tracer>,
    flight: Option<FlightRecorder>,
    /// Virtual time (ms) of the event currently being processed; deploys
    /// and undeploys between ticks stamp at the last processed event.
    now_ms: f64,
}

impl RuntimeObs {
    fn new(config: &ObsConfig) -> RuntimeObs {
        let mut registry = MetricsRegistry::new();
        let h = StatHandles {
            ticks: registry.counter("control_plane", "ticks"),
            dirty_nodes: registry.counter("control_plane", "dirty_nodes"),
            points_updated: registry.counter("control_plane", "points_updated"),
            nodes_joined: registry.counter("control_plane", "nodes_joined"),
            join_ns: registry.counter("control_plane", "join_ns"),
            refresh_ns: registry.counter("control_plane", "refresh_ns"),
            local_reopt_ns: registry.counter("control_plane", "local_reopt_ns"),
            rewrite_ns: registry.counter("control_plane", "rewrite_ns"),
            full_reopt_ns: registry.counter("control_plane", "full_reopt_ns"),
            evac_ns: registry.counter("control_plane", "evac_ns"),
            reopt_evaluated: registry.counter("control_plane", "reopt_evaluated"),
            reopt_skipped: registry.counter("control_plane", "reopt_skipped"),
            usage_ns: registry.counter("control_plane", "usage_ns"),
            arrivals: registry.counter("lifecycle", "arrivals"),
            departures: registry.counter("lifecycle", "departures"),
            reuse_hits: registry.counter("lifecycle", "reuse_hits"),
            reused_services: registry.counter("lifecycle", "reused_services"),
            marginal_usage: registry.gauge("lifecycle", "marginal_usage"),
            standalone_usage: registry.gauge("lifecycle", "standalone_usage"),
            dirty_per_tick: registry.histogram_with(
                sbon_obs::MetricKey::plain("control_plane", "dirty_per_tick"),
                Histogram::with_bounds(vec![8.0, 32.0, 128.0, 512.0, 4096.0]),
            ),
        };
        let tracer = config.trace.as_ref().map(|spec| {
            let mut t = Tracer::new(spec.sampler());
            match &spec.sink {
                SinkSpec::Null => t.add_sink(Box::new(NullSink::default())),
                SinkSpec::JsonlFile(path) => {
                    let file = std::fs::File::create(path)
                        .unwrap_or_else(|e| panic!("create trace file {}: {e}", path.display()));
                    t.add_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(file))));
                }
            }
            t
        });
        let flight =
            (config.flight_capacity > 0).then(|| FlightRecorder::new(config.flight_capacity));
        RuntimeObs { registry, h, tracer, flight, now_ms: 0.0 }
    }

    /// Opens a span at the current virtual time. The fields closure runs
    /// only when tracing is on and the sampler keeps the span, so the
    /// disabled path costs one branch.
    #[inline]
    fn span_start(
        &mut self,
        kind: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) -> Option<SpanId> {
        let t = self.tracer.as_mut()?;
        t.span_start(kind, self.now_ms, fields())
    }

    /// Closes a span; `None` (tracing off or sampled out) is free.
    #[inline]
    fn span_end(
        &mut self,
        span: Option<SpanId>,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) {
        if span.is_some() {
            if let Some(t) = self.tracer.as_mut() {
                t.span_end(span, self.now_ms, fields());
            }
        }
    }

    /// Emits an instantaneous event at the current virtual time.
    #[inline]
    fn point(
        &mut self,
        kind: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) {
        if let Some(t) = self.tracer.as_mut() {
            t.point(kind, self.now_ms, fields());
        }
    }

    /// Records a flight-recorder event (detail rendered only when one is
    /// configured).
    #[inline]
    fn flight(
        &mut self,
        subsystem: &'static str,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        let now = self.now_ms;
        if let Some(f) = self.flight.as_mut() {
            f.record(now, subsystem, code, detail());
        }
    }

    /// Records a flight-recorder anomaly.
    #[inline]
    fn flight_anomaly(
        &mut self,
        subsystem: &'static str,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        let now = self.now_ms;
        if let Some(f) = self.flight.as_mut() {
            f.record_anomaly(now, subsystem, code, detail());
        }
    }
}

/// Backend-selected ground-truth latency state.
enum LatencyState {
    /// Materialized all-pairs matrix, re-derived from the (possibly
    /// jittered) underlay graph whenever edges change. `base_edges` keeps
    /// the unperturbed edge latencies as the jitter band reference.
    Dense { current: LatencyMatrix, graph: Graph, base_edges: Vec<f64> },
    /// Demand-driven rows; the provider carries its own graph and base
    /// edge weights, and repairs cached rows in place on edge deltas.
    Lazy(LazyLatency),
}

impl LatencyState {
    /// The active provider as a trait object.
    fn provider(&self) -> &dyn LatencyProvider {
        match self {
            LatencyState::Dense { current, .. } => current,
            LatencyState::Lazy(lazy) => lazy,
        }
    }

    /// Ground-truth latency between two nodes.
    fn query(&self, a: NodeId, b: NodeId) -> f64 {
        self.provider().latency(a, b)
    }
}

/// Draws one tick of [`JitterModel`] edge deltas against the current graph
/// weights: `edges_per_tick` uniform edge draws, each composing a factor
/// onto the edge's running value and clamping to `band` × its base
/// latency. Repeated draws of an edge compose within the tick (the second
/// factor applies to the first's result); the returned list holds one
/// final `(edge, latency)` per distinct edge, in first-draw order. Both
/// latency backends feed the identical sequence to their own apply step,
/// which is what keeps jittered runs bit-identical across backends.
fn sample_edge_deltas<R: Rng, B: Fn(EdgeId) -> f64>(
    rng: &mut R,
    jitter: &JitterModel,
    graph: &Graph,
    base: B,
) -> Vec<(EdgeId, f64)> {
    let m = graph.num_edges();
    if m == 0 {
        return Vec::new();
    }
    // sbon-lint: allow(unordered-iteration): slot map for compounding
    // repeated jitter on one edge; iteration happens over `deltas` (a Vec).
    let mut index: HashMap<u32, usize> = HashMap::new();
    let mut deltas: Vec<(EdgeId, f64)> = Vec::new();
    for _ in 0..jitter.edges_per_tick {
        let e = EdgeId(rng.gen_range(0..m) as u32);
        let f = rng.gen_range(jitter.factor_range.0..jitter.factor_range.1);
        let cur = match index.get(&e.0) {
            Some(&slot) => deltas[slot].1,
            None => graph.edge(e).latency_ms,
        };
        let b = base(e);
        let next = (cur * f).clamp(b * jitter.band.0, b * jitter.band.1);
        match index.entry(e.0) {
            std::collections::hash_map::Entry::Occupied(slot) => deltas[*slot.get()].1 = next,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(deltas.len());
                deltas.push((e, next));
            }
        }
    }
    deltas
}

/// RNG stream salt for per-node join-time Vivaldi placement; the high bits
/// keep `salt ^ node` disjoint from every other derivation stream.
const PLACE_STREAM: u64 = 0x517e_9a4e << 32;

/// Runs `f` over `indices` on the pool when one is active (and there is
/// enough work to shard), serially otherwise. Results come back in input
/// order either way, and `f` is pure per index, so thread count never
/// changes what the caller commits.
fn run_parallel<T: Send>(
    pool: &Option<rayon::ThreadPool>,
    indices: &[usize],
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    match pool {
        Some(pool) if indices.len() > 1 => {
            pool.install(|| indices.par_iter().map(|&i| f(i)).collect())
        }
        _ => indices.iter().map(|&i| f(i)).collect(),
    }
}

/// The host set an evaluation's cost estimates read: every placement node
/// of the circuit, deduplicated. Cost-point changes at any of them can
/// change the estimate (and with it the pass's decision).
fn circuit_hosts(circuit: &Circuit, placement: &Placement) -> Vec<NodeId> {
    let mut hosts: Vec<NodeId> =
        circuit.services().iter().map(|s| placement.node_of(s.id)).collect();
    hosts.sort_unstable();
    hosts.dedup();
    hosts
}

/// The simulated SBON.
pub struct OverlayRuntime {
    config: RuntimeConfig,
    /// The construction seed, kept for per-node derived RNG streams
    /// (join-time placement must not depend on join batching).
    seed: u64,
    latency: LatencyState,
    attrs: NodeAttrs,
    space: CostSpace,
    #[allow(dead_code)]
    embedding: VivaldiEmbedding,
    /// Frozen landmark set for join-time Vivaldi placement; `Some` iff the
    /// deployment is a wave and landmark mode is active with `k < n`.
    placer: Option<LandmarkPlacer>,
    /// Worker pool for the parallel per-tick stages; `None` runs serial.
    pool: Option<rayon::ThreadPool>,
    circuits: Vec<Deployed>,
    rng: rand::rngs::StdRng,
    optimizer: IntegratedOptimizer,
    /// Reuse-aware tenancy registry; `Some` iff `config.reuse` ≠ `None`.
    multiquery: Option<MultiQueryOptimizer>,
    /// Departed circuits' subtrees still running for their subscribers.
    retained: Vec<RetainedShared>,
    /// The single long-lived physical mapper, kept in sync with `space`.
    mapper: MapperState,
    /// Dirty tracking for re-optimization: which circuits each adaptation
    /// pass may skip, and which control-plane deltas invalidate them.
    relevance: RelevanceIndex,
    /// Observability: the metrics registry behind the control-plane and
    /// lifecycle stats views, plus the optional tracer/flight recorder.
    obs: RuntimeObs,
    /// `alive[node]` — failed nodes host nothing and map to nothing.
    alive: Vec<bool>,
    /// `arrived[node]` — nodes still waiting in the deployment wave host
    /// nothing and map to nothing (all `true` under
    /// [`DeploymentModel::Full`]).
    arrived: Vec<bool>,
    /// Wave arrivals not yet admitted, in arrival order.
    pending_joins: VecDeque<NodeId>,
    /// Failures to inject during `run`, as `(time_ms, node)`.
    pending_failures: Vec<(f64, NodeId)>,
    /// Circuits killed because a *pinned* service (producer/consumer) died.
    failed_circuits: Vec<CircuitHandle>,
    /// Monotonic handle counter.
    next_handle: usize,
}

impl OverlayRuntime {
    /// Builds the runtime: ground-truth latency from the topology (dense
    /// matrix or lazy rows per [`RuntimeConfig::latency_backend`]), a Vivaldi
    /// embedding over it, an initial load assignment, and the Figure-2-style
    /// latency+load² cost space. Deterministic in `seed`; both backends
    /// serve bit-identical latencies, so the backend choice does not change
    /// results — only the cost of obtaining them.
    pub fn new(topology: &Topology, seed: u64, config: RuntimeConfig) -> Self {
        let n = topology.num_nodes();
        let pool = match config.threads {
            1 => None,
            t => {
                let t = if t == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    t
                };
                (t > 1).then(|| {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(t)
                        .build()
                        .expect("runtime worker pool")
                })
            }
        };
        let latency = match config.latency_backend {
            LatencyBackend::Dense => {
                let graph = topology.graph.clone();
                let base_edges = graph.edges().iter().map(|e| e.latency_ms).collect();
                let current = all_pairs_latency(&graph);
                LatencyState::Dense { current, graph, base_edges }
            }
            LatencyBackend::Lazy => {
                let graph = topology.graph.clone();
                LatencyState::Lazy(match config.lazy_row_cache {
                    Some(cap) => LazyLatency::with_capacity(graph, cap),
                    None => LazyLatency::new(graph),
                })
            }
        };
        // Membership bring-up: everyone at once, or an initial subset with
        // the rest queued behind a deterministic shuffled arrival order.
        let (arrived, pending_joins): (Vec<bool>, VecDeque<NodeId>) = match config.deployment {
            DeploymentModel::Full => (vec![true; n], VecDeque::new()),
            DeploymentModel::Wave { initial, .. } => {
                let initial = initial.clamp(1, n);
                let mut order: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
                order.shuffle(&mut derive_rng(seed, 0x77a1_e5e7));
                let mut arrived = vec![false; n];
                for node in &order[..initial] {
                    arrived[node.index()] = true;
                }
                (arrived, order[initial..].iter().copied().collect())
            }
        };
        // Embedding bring-up. A deployment wave with landmark mode active
        // never embeds all n coordinates up front: the landmark half of the
        // protocol runs once, the initial members are placed against the
        // frozen landmarks, and everyone else is placed the tick they
        // join. Each node's placement uses its own derived RNG stream, so
        // *when* a node joins does not change *where* it lands.
        let landmark_draw = match config.deployment {
            DeploymentModel::Wave { .. } => config.vivaldi.landmark_ids(n, seed),
            DeploymentModel::Full => None,
        };
        let (embedding, placer) = match landmark_draw {
            Some(landmark_ids) => {
                if let LatencyState::Lazy(lazy) = &latency {
                    // The landmark rows are the only latency sources the
                    // protocol and every placement read; compute them in
                    // parallel up front and keep them resident.
                    let sources: Vec<NodeId> =
                        landmark_ids.iter().map(|&i| NodeId(i as u32)).collect();
                    lazy.ensure_rows(&sources, pool.as_ref());
                }
                let placer = config.vivaldi.embed_landmarks_only(&latency.provider(), seed);
                let dims = config.vivaldi.dims;
                let mut coords = vec![vec![0.0; dims]; n];
                let mut heights = vec![0.0; n];
                let mut errors = vec![1.0; n];
                let mut is_landmark = vec![false; n];
                for (idx, &lm) in placer.landmark_ids().iter().enumerate() {
                    let state = placer.landmark_state(idx);
                    coords[lm].copy_from_slice(&state.coord);
                    heights[lm] = state.height;
                    errors[lm] = state.error;
                    is_landmark[lm] = true;
                }
                for node in 0..n {
                    if arrived[node] && !is_landmark[node] {
                        let mut rng = derive_rng(seed, PLACE_STREAM ^ node as u64);
                        let state =
                            placer.place(&latency.provider(), NodeId(node as u32), &mut rng);
                        coords[node] = state.coord;
                        heights[node] = state.height;
                        errors[node] = state.error;
                    }
                }
                // Unarrived non-landmark nodes sit at the origin until they
                // join; they are unmapped until then, so the placeholder is
                // never served.
                (VivaldiEmbedding { coords, heights, errors }, Some(placer))
            }
            None => {
                let embedding = config.vivaldi.embed(&latency.provider(), seed);
                if let LatencyState::Lazy(lazy) = &latency {
                    // The embedding touched every row once; the steady
                    // state only reads rows of circuit hosts, so free the
                    // warm-up cache.
                    lazy.evict_all();
                }
                (embedding, None)
            }
        };
        let mut rng = derive_rng(seed, 0x0ead);
        let attrs = config.initial_load.generate(n, &mut rng);
        let space =
            CostSpaceBuilder::latency_load_space_scaled(&embedding, &attrs, config.load_scale);
        let members: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|node| arrived[node.index()]).collect();
        let mapper = match config.mapper_backend {
            MapperBackend::Dht { bits, scan_width } => {
                // Cap the grid resolution so the Hilbert key fits the
                // 128-bit ring whatever the space's dimensionality.
                let bits = bits.min((128 / space.dims() as u32).max(1));
                MapperState::Dht(DhtMapper::build_with_members(
                    &space,
                    // Full scalar range: load churn must never push a
                    // registered coordinate outside the quantizer box.
                    &DhtMapperConfig { bits, scan_width, ..DhtMapperConfig::default() },
                    &members,
                ))
            }
            MapperBackend::Oracle => {
                MapperState::Oracle(LiveOracleMapper::with_members(n, members))
            }
            MapperBackend::Routed { bits, scan_width, proto } => {
                let bits = bits.min((128 / space.dims() as u32).max(1));
                MapperState::Routed(RoutedMapper::build_with_members(
                    &space,
                    &DhtMapperConfig { bits, scan_width, ..DhtMapperConfig::default() },
                    proto,
                    &members,
                ))
            }
        };
        let multiquery = match config.reuse {
            ReuseScope::None => None,
            _ => Some(MultiQueryOptimizer::new(OptimizerConfig::default())),
        };
        let obs = RuntimeObs::new(&config.obs);
        OverlayRuntime {
            optimizer: IntegratedOptimizer::new(OptimizerConfig::default()),
            config,
            seed,
            latency,
            attrs,
            space,
            embedding,
            placer,
            pool,
            circuits: Vec::new(),
            rng,
            multiquery,
            retained: Vec::new(),
            mapper,
            relevance: RelevanceIndex::new(),
            obs,
            alive: vec![true; n],
            arrived,
            pending_joins,
            pending_failures: Vec::new(),
            failed_circuits: Vec::new(),
            next_handle: 0,
        }
    }

    /// Schedules a node failure at `at_ms` into the run. Services hosted on
    /// the dead node are immediately re-placed on live nodes; circuits whose
    /// *pinned* services (producers, consumer) die are torn down and
    /// reported in [`OverlayRuntime::failed_circuits`].
    pub fn schedule_failure(&mut self, at_ms: f64, node: NodeId) {
        self.pending_failures.push((at_ms, node));
    }

    /// Circuits lost to pinned-service failures so far.
    pub fn failed_circuits(&self) -> &[CircuitHandle] {
        &self.failed_circuits
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Whether a node has arrived (always true under
    /// [`DeploymentModel::Full`]).
    pub fn is_arrived(&self, node: NodeId) -> bool {
        self.arrived[node.index()]
    }

    /// Number of nodes that have arrived so far.
    pub fn arrived_count(&self) -> usize {
        self.arrived.iter().filter(|&&a| a).count()
    }

    /// Kills `node` now: evacuates unpinned services, tears down circuits
    /// with dead pinned services. Returns the number of evacuated services.
    fn fail_node(&mut self, node: NodeId) -> usize {
        if !self.alive[node.index()] {
            return 0;
        }
        self.alive[node.index()] = false;
        // The maintenance contract: the dead node leaves the mapper, so no
        // control-plane path can ever map onto it again. Clean records that
        // scanned its registration (or read its cost point) go dirty.
        match &mut self.mapper {
            MapperState::Dht(m) => {
                if let Some(key) = m.remove_node_traced(node) {
                    self.relevance.touch_key(key);
                }
            }
            MapperState::Oracle(m) => {
                m.remove_node(node);
                self.relevance.touch_all();
            }
            MapperState::Routed(m) => {
                if let Some(key) = m.remove_node_traced(node) {
                    self.relevance.touch_key(key);
                }
            }
        }
        self.relevance.touch_host(node);
        let placer = RelaxationPlacer::default();
        let mut evacuated = 0;

        // Tear down circuits whose pinned services died. Under reuse, each
        // dead circuit force-leaves the registry (its instances died with
        // it), and the failure **cascades**: circuits subscribed to a
        // torn-down instance lose their feed and are torn down too, as are
        // retained shared subtrees with a service on the dead node.
        let mut drained: Vec<(CircuitId, ServiceId)> = Vec::new();
        let mut idle: Vec<(CircuitId, ServiceId)> = Vec::new();
        let mut orphans: VecDeque<CircuitId> = VecDeque::new();
        let mut idx = 0;
        while idx < self.circuits.len() {
            let dead_pin =
                self.circuits[idx].circuit.services().iter().any(
                    |s| matches!(s.pin, sbon_core::circuit::ServicePin::Pinned(n) if n == node),
                );
            if dead_pin {
                let d = self.circuits.remove(idx);
                self.failed_circuits.push(d.handle);
                self.relevance.remove(d.handle.0 as u64);
                if let (Some(mq), Some(id)) = (&mut self.multiquery, d.mq_id) {
                    if let Some(rep) = mq.teardown_reporting(id) {
                        drained.extend(rep.drained);
                        idle.extend(rep.idle);
                        orphans.extend(rep.orphaned);
                    }
                }
            } else {
                idx += 1;
            }
        }
        // Retained shared subtrees with any service on the dead node are
        // broken: their (departed) owners join the teardown worklist.
        orphans.extend(self.retained.iter().filter_map(|r| {
            let mask = subtree_mask(&r.circuit, &r.roots);
            let broken = r
                .circuit
                .services()
                .iter()
                .any(|s| mask[s.id.index()] && r.placement.node_of(s.id) == node);
            broken.then_some(r.owner)
        }));
        // Cascade: tear down orphaned subscribers (and whatever their
        // teardown orphans in turn).
        while let Some(id) = orphans.pop_front() {
            if let Some(pos) = self.circuits.iter().position(|d| d.mq_id == Some(id)) {
                let d = self.circuits.remove(pos);
                self.failed_circuits.push(d.handle);
                self.relevance.remove(d.handle.0 as u64);
            }
            self.retained.retain(|r| r.owner != id);
            if let Some(mq) = &mut self.multiquery {
                if let Some(rep) = mq.teardown_reporting(id) {
                    drained.extend(rep.drained);
                    idle.extend(rep.idle);
                    orphans.extend(rep.orphaned);
                }
            }
        }
        self.apply_drains(&drained);
        self.apply_idle(&idle);

        // Evacuate unpinned services stranded on the dead node, through the
        // same runtime-owned mapper every other control-plane path uses.
        for d in &mut self.circuits {
            let stranded: Vec<_> = d
                .circuit
                .services()
                .iter()
                .filter(|s| s.is_unpinned() && d.placement.node_of(s.id) == node)
                .map(|s| s.id)
                .collect();
            if stranded.is_empty() {
                continue;
            }
            // Evacuation rewrites the placement: the circuit is dirty for
            // every pass kind.
            self.relevance.mark_dirty(d.handle.0 as u64);
            let vp = sbon_core::placement::VirtualPlacer::place(&placer, &d.circuit, &self.space);
            for sid in stranded {
                let ideal = self.space.ideal_point(vp.coord_of(sid));
                let (new_node, _) = self.mapper.as_dyn().map_point(&self.space, &ideal);
                d.placement.move_service(sid, new_node);
                // Keep the reuse-discovery index truthful about the host.
                if let (Some(mq), Some(id)) = (&mut self.multiquery, d.mq_id) {
                    mq.relocate(id, sid, new_node, &self.space);
                }
                evacuated += 1;
            }
        }
        evacuated
    }

    /// Applies cascaded drains reported by the registry: retained subtrees
    /// whose last subscriber left stop accruing usage.
    fn apply_drains(&mut self, drained: &[(CircuitId, ServiceId)]) {
        for &(owner, root) in drained {
            let Some(pos) = self.retained.iter().position(|r| r.owner == owner) else {
                continue;
            };
            let entry = &mut self.retained[pos];
            entry.roots.retain(|&s| s != root);
            if entry.roots.is_empty() {
                self.retained.remove(pos);
            } else {
                entry.charge = charge_mask(&entry.circuit, &entry.roots, &entry.owner_shared);
            }
        }
    }

    /// Whether a circuit is tenancy-entangled: it borrows shared subtrees
    /// from others, or others subscribe to one of its instances. Entangled
    /// circuits must not have their plan replaced (the swap would strand
    /// tenants); untenanted ones may, with a registry re-registration.
    fn is_entangled(multiquery: &Option<MultiQueryOptimizer>, d: &Deployed) -> bool {
        let Some(mq) = multiquery else { return false };
        let Some(id) = d.mq_id else { return false };
        d.shared.iter().any(|&s| s)
            || d.circuit.services().iter().any(|s| mq.refcount(id, s.id) > 0)
    }

    /// Serial pre-filter of one adaptation pass: the indices of circuits
    /// the pass must evaluate. `skip_entangled` applies the tenancy rule of
    /// the plan-replacing passes; the dirty filter (when
    /// [`RuntimeConfig::incremental_reopt`] is on) drops circuits whose
    /// re-opt inputs are unchanged since their last no-op `kind`
    /// evaluation. Entangled circuits count toward neither evaluated nor
    /// skipped — they were never candidates.
    fn dirty_circuits(&mut self, kind: ReoptKind, skip_entangled: bool) -> Vec<usize> {
        let mut eval = Vec::new();
        let mut skipped = 0u64;
        for (i, d) in self.circuits.iter().enumerate() {
            if skip_entangled && Self::is_entangled(&self.multiquery, d) {
                continue;
            }
            if self.config.incremental_reopt && !self.relevance.is_dirty(kind, d.handle.0 as u64) {
                skipped += 1;
                continue;
            }
            eval.push(i);
        }
        self.obs.registry.inc(self.obs.h.reopt_skipped, skipped);
        self.obs.registry.inc(self.obs.h.reopt_evaluated, eval.len() as u64);
        eval
    }

    /// Lifts the tenancy pin from instances whose last subscriber left
    /// while their owner keeps running — they are migratable again.
    fn apply_idle(&mut self, idle: &[(CircuitId, ServiceId)]) {
        for &(owner, service) in idle {
            if let Some(d) = self.circuits.iter_mut().find(|d| d.mq_id == Some(owner)) {
                d.circuit.unpin_service(service);
                // The unpin changes what the passes may migrate/replace.
                self.relevance.mark_dirty(d.handle.0 as u64);
            }
        }
    }

    /// The cost space (for inspection).
    pub fn space(&self) -> &CostSpace {
        &self.space
    }

    /// Ground-truth latency (for inspection). Backed by the dense matrix or
    /// the lazy row cache depending on [`RuntimeConfig::latency_backend`];
    /// both serve identical values.
    pub fn latency(&self) -> &dyn LatencyProvider {
        self.latency.provider()
    }

    /// Row-cache counters of the lazy backend; `None` under the dense one.
    pub fn lazy_latency_stats(&self) -> Option<LazyLatencyStats> {
        match &self.latency {
            LatencyState::Lazy(lazy) => Some(lazy.stats()),
            LatencyState::Dense { .. } => None,
        }
    }

    /// Name of the active physical-mapping backend.
    pub fn mapper_name(&self) -> &'static str {
        match &self.mapper {
            MapperState::Dht(m) => m.name(),
            MapperState::Oracle(m) => m.name(),
            MapperState::Routed(m) => m.name(),
        }
    }

    /// Catalog traffic counters of the DHT mapper; `None` under the oracle
    /// backend.
    pub fn dht_stats(&self) -> Option<CatalogStats> {
        match &self.mapper {
            MapperState::Dht(m) => Some(m.stats()),
            MapperState::Oracle(_) => None,
            MapperState::Routed(m) => Some(m.stats()),
        }
    }

    /// Message-traffic statistics of the routed control plane; `None`
    /// under the other backends.
    pub fn routed_stats(&self) -> Option<&RoutedStats> {
        match &self.mapper {
            MapperState::Routed(m) => Some(m.routed_stats()),
            _ => None,
        }
    }

    /// Accumulated control-plane accounting (refresh vs mapping vs
    /// latency-read time), assembled as a view over the metrics registry.
    /// Under [`MapperBackend::Routed`] the routed message-traffic summary
    /// (experienced latency percentiles, hop histogram, retries) is folded
    /// in at call time.
    pub fn control_plane_stats(&self) -> ControlPlaneStats {
        let r = &self.obs.registry;
        let h = &self.obs.h;
        let mut cp = ControlPlaneStats {
            ticks: r.counter_value(h.ticks) as usize,
            dirty_nodes: r.counter_value(h.dirty_nodes) as usize,
            points_updated: r.counter_value(h.points_updated) as usize,
            nodes_joined: r.counter_value(h.nodes_joined) as usize,
            join_ns: u128::from(r.counter_value(h.join_ns)),
            refresh_ns: u128::from(r.counter_value(h.refresh_ns)),
            local_reopt_ns: u128::from(r.counter_value(h.local_reopt_ns)),
            rewrite_ns: u128::from(r.counter_value(h.rewrite_ns)),
            full_reopt_ns: u128::from(r.counter_value(h.full_reopt_ns)),
            evac_ns: u128::from(r.counter_value(h.evac_ns)),
            reopt_evaluated: r.counter_value(h.reopt_evaluated) as usize,
            reopt_skipped: r.counter_value(h.reopt_skipped) as usize,
            usage_ns: u128::from(r.counter_value(h.usage_ns)),
            routed_messages: 0,
            routed_lookups: 0,
            routed_retries: 0,
            routed_timeouts: 0,
            routed_hop_histogram: Vec::new(),
            routed_p50_latency_ms: None,
            routed_p99_latency_ms: None,
        };
        if let MapperState::Routed(m) = &self.mapper {
            let rs = m.routed_stats();
            cp.routed_messages = rs.messages;
            cp.routed_lookups = rs.lookups;
            cp.routed_retries = rs.retries;
            cp.routed_timeouts = rs.timeouts;
            cp.routed_hop_histogram = rs.hop_histogram();
            cp.routed_p50_latency_ms = rs.p50_latency_ms();
            cp.routed_p99_latency_ms = rs.p99_latency_ms();
        }
        cp
    }

    /// A point-in-time snapshot of the runtime's metrics registry. Under
    /// [`MapperBackend::Routed`] the routed traffic counters and the
    /// hop/latency histograms are folded in under `routed.*` keys. Two
    /// snapshots [`MetricsSnapshot::diff`] into a per-interval view.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry.snapshot();
        if let MapperState::Routed(m) = &self.mapper {
            let rs = m.routed_stats();
            snap.counters.insert("routed.messages".into(), rs.messages);
            snap.counters.insert("routed.lookups".into(), rs.lookups);
            snap.counters.insert("routed.registrations".into(), rs.registrations);
            snap.counters.insert("routed.unregistrations".into(), rs.unregistrations);
            snap.counters.insert("routed.retries".into(), rs.retries);
            snap.counters.insert("routed.timeouts".into(), rs.timeouts);
            snap.histograms.insert("routed.hops".into(), HistogramSnapshot::of(&rs.hops));
            snap.histograms
                .insert("routed.latency_ms".into(), HistogramSnapshot::of(&rs.latency_ms));
        }
        snap
    }

    /// The flight recorder's retained tail, when one is configured.
    pub fn flight_dump(&self) -> Option<String> {
        self.obs.flight.as_ref().map(|f| f.dump())
    }

    /// Trace events emitted so far; `None` when tracing is off.
    pub fn trace_events_emitted(&self) -> Option<u64> {
        self.obs.tracer.as_ref().map(|t| t.emitted)
    }

    /// Finishes tracing: flushes every sink and detaches them (subsequent
    /// spans are dropped). Returns the sinks for inspection. Dropping the
    /// runtime flushes implicitly; call this to read a trace file while
    /// the runtime is still alive.
    pub fn finish_trace(&mut self) -> Option<Vec<Box<dyn TraceSink>>> {
        self.obs.tracer.take().map(Tracer::finish)
    }

    /// Replays lookups and registrations parked by the routed mapper as
    /// message traffic on the live latency provider, driving the control
    /// plane's event queue to quiescence. A no-op under the other
    /// backends. Runs only on serial paths (tick boundaries, deploy,
    /// failure handling), so thread count never touches the routed clock.
    fn settle_routed(&mut self, at: SimTime) {
        let MapperState::Routed(m) = &mut self.mapper else { return };
        if m.pending_traffic() == 0 && m.routed().is_quiescent() {
            return;
        }
        let before = {
            let rs = m.routed_stats();
            (rs.messages, rs.lookups, rs.registrations, rs.timeouts)
        };
        let provider = self.latency.provider();
        let link = |a: u32, b: u32| provider.latency(NodeId(a), NodeId(b));
        m.settle(at, &link);
        let (msgs, lookups, regs, timeouts) = {
            let rs = m.routed_stats();
            (
                rs.messages - before.0,
                rs.lookups - before.1,
                rs.registrations - before.2,
                rs.timeouts - before.3,
            )
        };
        self.obs.point("routed.settle", || {
            vec![
                ("messages", msgs.into()),
                ("lookups", lookups.into()),
                ("registrations", regs.into()),
            ]
        });
        if timeouts > 0 {
            self.obs.flight_anomaly("routed", "timeout_storm", || {
                format!("{timeouts} routed timeouts fired in one settle")
            });
        }
    }

    /// Demand-computes every shortest-path row the next usage accounting
    /// pass will read — the upstream endpoint of each charged link — in
    /// parallel across the worker pool when one is active. A no-op under
    /// the dense backend and for rows already resident. Row *computation*
    /// is pure and order-free; insertion happens on this thread in
    /// first-occurrence order, so cache state and all served values are
    /// identical at any thread count.
    fn prewarm_usage_rows(&self) {
        let LatencyState::Lazy(lazy) = &self.latency else { return };
        let mut sources: Vec<NodeId> = Vec::new();
        for d in &self.circuits {
            for l in d.circuit.links() {
                if !d.shared.get(l.to.index()).copied().unwrap_or(false) {
                    sources.push(d.placement.node_of(l.from));
                }
            }
        }
        for r in &self.retained {
            for (l, &charged) in r.circuit.links().iter().zip(&r.charge) {
                if charged {
                    sources.push(r.placement.node_of(l.from));
                }
            }
        }
        lazy.ensure_rows(&sources, self.pool.as_ref());
    }

    /// Current instantaneous network usage: every live circuit's *charged*
    /// links (marginal links under reuse — links paid for by a reused
    /// instance's owner are skipped) plus the links of retained shared
    /// subtrees whose owners departed but whose subscribers remain.
    pub fn instantaneous_usage(&self) -> f64 {
        let live: f64 = self
            .circuits
            .iter()
            .map(|d| {
                d.circuit
                    .links()
                    .iter()
                    .filter(|l| !d.shared.get(l.to.index()).copied().unwrap_or(false))
                    .map(|l| {
                        l.rate
                            * self
                                .latency
                                .query(d.placement.node_of(l.from), d.placement.node_of(l.to))
                    })
                    .sum::<f64>()
            })
            .sum();
        let retained: f64 = self
            .retained
            .iter()
            .map(|r| {
                r.circuit
                    .links()
                    .iter()
                    .zip(&r.charge)
                    .filter(|&(_, &charged)| charged)
                    .map(|(l, _)| {
                        l.rate
                            * self
                                .latency
                                .query(r.placement.node_of(l.from), r.placement.node_of(l.to))
                    })
                    .sum::<f64>()
            })
            .sum();
        // `+ 0.0` normalizes the empty-sum identity `-0.0` to `+0.0` (and
        // changes nothing else), so idle baselines print and compare as
        // plain zero.
        live + retained + 0.0
    }

    /// Optimizes and deploys a query; returns its handle. Candidate plans
    /// are physically mapped through the runtime-owned mapper (routed DHT
    /// lookups under the default backend). With [`RuntimeConfig::reuse`]
    /// enabled the query may attach to running operator subtrees; each
    /// attachment subscribes to (refcounts) the instance and pins it in its
    /// owner's circuit so re-optimization stops migrating it.
    pub fn deploy(&mut self, query: QuerySpec) -> Option<CircuitHandle> {
        let sp = self.obs.span_start("deploy", Vec::new);
        let deployed = self.deploy_inner(query);
        match deployed {
            Some(handle) => {
                self.obs.span_end(sp, || vec![("handle", handle.0.into())]);
                self.obs.flight("runtime", "deploy", || format!("handle {}", handle.0));
            }
            None => {
                self.obs.span_end(sp, || vec![("failed", 1u64.into())]);
                self.obs.flight_anomaly("runtime", "deploy_failed", || {
                    "optimizer produced no deployable plan".to_string()
                });
            }
        }
        deployed
    }

    fn deploy_inner(&mut self, query: QuerySpec) -> Option<CircuitHandle> {
        let (running_plan, circuit, placement, mq_id, shared, reused) = match &mut self.multiquery {
            Some(mq) => {
                let out = mq.optimize_and_deploy_with_mapper(
                    &query,
                    &self.space,
                    self.latency.provider(),
                    self.config.reuse,
                    self.mapper.as_dyn(),
                )?;
                self.obs
                    .registry
                    .gauge_add(self.obs.h.marginal_usage, out.marginal_cost.network_usage);
                self.obs
                    .registry
                    .gauge_add(self.obs.h.standalone_usage, out.standalone_cost.network_usage);
                if !out.reused.is_empty() {
                    self.obs.registry.inc(self.obs.h.reuse_hits, 1);
                }
                self.obs.registry.inc(self.obs.h.reused_services, out.reused.len() as u64);
                (out.plan, out.circuit, out.placement, Some(out.id), out.shared, out.reused)
            }
            None => {
                let placed = self.optimizer.optimize_with_mapper(
                    &query,
                    &self.space,
                    self.latency.provider(),
                    self.mapper.as_dyn(),
                )?;
                self.obs.registry.gauge_add(self.obs.h.marginal_usage, placed.cost.network_usage);
                self.obs.registry.gauge_add(self.obs.h.standalone_usage, placed.cost.network_usage);
                (placed.plan, placed.circuit, placed.placement, None, Vec::new(), Vec::new())
            }
        };
        // Tenancy pin: a subscribed instance is load-bearing for its new
        // tenant, so its owner must stop migrating it.
        for inst in &reused {
            if let Some(owner) = self.circuits.iter_mut().find(|d| d.mq_id == Some(inst.circuit)) {
                owner.circuit.pin_service(inst.service, inst.node);
                // The pin changes the owner's adaptation surface.
                self.relevance.mark_dirty(owner.handle.0 as u64);
            }
        }
        let handle = CircuitHandle(self.next_handle);
        self.next_handle += 1;
        self.obs.registry.inc(self.obs.h.arrivals, 1);
        self.circuits.push(Deployed {
            handle,
            query,
            running_plan,
            circuit,
            placement,
            mq_id,
            shared,
        });
        // Routed backend: the deployment's mapping lookups are parked in
        // the mapper's outbox — replay them as message traffic now (the
        // routed clock carries the time forward between run ticks).
        self.settle_routed(SimTime::ZERO);
        Some(handle)
    }

    /// Tears a circuit down — the inverse of [`OverlayRuntime::deploy`].
    /// Its traffic is discharged from usage accounting immediately; under
    /// reuse, shared services it owns are **retained** while subscribers
    /// remain and released only when their refcount drains to zero.
    /// Returns `false` for unknown (or already failed / undeployed)
    /// handles.
    pub fn undeploy(&mut self, handle: CircuitHandle) -> bool {
        let Some(idx) = self.circuits.iter().position(|d| d.handle == handle) else {
            return false;
        };
        let d = self.circuits.remove(idx);
        self.obs.registry.inc(self.obs.h.departures, 1);
        self.obs.point("undeploy", || vec![("handle", handle.0.into())]);
        self.relevance.remove(d.handle.0 as u64);
        if let (Some(mq), Some(mq_id)) = (&mut self.multiquery, d.mq_id) {
            if let Some(rep) = mq.release(mq_id) {
                if !rep.retained.is_empty() {
                    let charge = charge_mask(&d.circuit, &rep.retained, &d.shared);
                    self.retained.push(RetainedShared {
                        owner: mq_id,
                        circuit: d.circuit,
                        placement: d.placement,
                        owner_shared: d.shared,
                        roots: rep.retained,
                        charge,
                    });
                }
                self.apply_drains(&rep.drained);
                self.apply_idle(&rep.idle);
            }
        }
        true
    }

    /// Queries currently running (the active-query gauge; retained shared
    /// subtrees of departed queries are not counted).
    pub fn active_queries(&self) -> usize {
        self.circuits.len()
    }

    /// Departed circuits' shared subtrees still running for subscribers.
    pub fn retained_shared_subtrees(&self) -> usize {
        self.retained.len()
    }

    /// Query-lifecycle accounting so far, assembled as a view over the
    /// metrics registry.
    pub fn lifecycle_stats(&self) -> QueryLifecycleStats {
        let r = &self.obs.registry;
        let h = &self.obs.h;
        QueryLifecycleStats {
            arrivals: r.counter_value(h.arrivals) as usize,
            departures: r.counter_value(h.departures) as usize,
            reuse_hits: r.counter_value(h.reuse_hits) as usize,
            reused_services: r.counter_value(h.reused_services) as usize,
            marginal_usage: r.gauge_value(h.marginal_usage),
            standalone_usage: r.gauge_value(h.standalone_usage),
        }
    }

    /// The reuse registry, when [`RuntimeConfig::reuse`] is enabled — for
    /// inspecting refcounts and instance counts.
    pub fn multiquery(&self) -> Option<&MultiQueryOptimizer> {
        self.multiquery.as_ref()
    }

    /// The current placement of a circuit. `None` after the circuit failed.
    pub fn placement(&self, handle: CircuitHandle) -> Option<&Placement> {
        self.circuits.iter().find(|d| d.handle == handle).map(|d| &d.placement)
    }

    /// Runs the simulation to the horizon, returning the usage time series.
    ///
    /// A thin wrapper over the session API ([`OverlayRuntime::start_run`] /
    /// [`OverlayRuntime::advance_ticks`] / [`OverlayRuntime::finish_run`]),
    /// which external drivers use to interleave query arrivals and
    /// departures with the simulation clock.
    pub fn run(&mut self) -> RunReport {
        let mut session = self.start_run();
        self.advance_ticks(&mut session, usize::MAX);
        self.finish_run(session)
    }

    /// Starts a run: schedules the tick train, the configured adaptation
    /// cadences, and any pending failures. Drive the returned session with
    /// [`OverlayRuntime::advance_ticks`]; deploy/undeploy freely between
    /// calls.
    pub fn start_run(&mut self) -> RunSession {
        let mut queue: EventQueue<Event> = EventQueue::new();
        queue.schedule(SimTime(self.config.tick_ms), Event::Tick);
        if let Some(interval) = self.config.reopt_interval_ms {
            queue.schedule(SimTime(interval), Event::LocalReopt);
        }
        if let Some(interval) = self.config.full_reopt_interval_ms {
            queue.schedule(SimTime(interval), Event::FullReopt);
        }
        if let Some(interval) = self.config.rewrite_interval_ms {
            queue.schedule(SimTime(interval), Event::Rewrite);
        }
        for (at_ms, node) in std::mem::take(&mut self.pending_failures) {
            queue.schedule(SimTime(at_ms), Event::Fail(node));
        }
        RunSession {
            queue,
            report: RunReport::default(),
            cumulative: 0.0,
            horizon: SimTime(self.config.horizon_ms),
        }
    }

    /// Processes events until `ticks` churn ticks have completed (or the
    /// horizon is reached). Returns `true` while the run has more events —
    /// i.e. `false` means the horizon was exhausted and the session is
    /// ready for [`OverlayRuntime::finish_run`].
    pub fn advance_ticks(&mut self, session: &mut RunSession, ticks: usize) -> bool {
        let mut done = 0usize;
        while done < ticks {
            let Some((now, event)) = session.queue.pop_until(session.horizon) else {
                return false;
            };
            let was_tick = matches!(event, Event::Tick);
            self.handle_event(session, now, event);
            if was_tick {
                done += 1;
            }
        }
        true
    }

    /// Ends a run, folding the lifetime query-lifecycle counters into the
    /// report.
    pub fn finish_run(&mut self, session: RunSession) -> RunReport {
        let mut report = session.report;
        let lifecycle = self.lifecycle_stats();
        report.arrivals = lifecycle.arrivals;
        report.departures = lifecycle.departures;
        report.reuse_hits = lifecycle.reuse_hits;
        report
    }

    /// Processes one simulation event.
    fn handle_event(&mut self, s: &mut RunSession, now: SimTime, event: Event) {
        // Spans are stamped with *virtual* time: the event's simulation
        // clock, never the wall clock.
        self.obs.now_ms = now.millis();
        match event {
            Event::Tick => {
                let sp = self.obs.span_start("tick", Vec::new);
                self.apply_churn();
                // Routed backend: replay the tick's parked registrations
                // (and any deploy-time lookups since the last boundary) as
                // message traffic over the *current* (possibly jittered)
                // latencies.
                self.settle_routed(now);
                // Accrue usage over the elapsed tick (usage·seconds). The
                // prewarm shards the tick's missing shortest-path rows
                // across the pool; the accounting pass then reads cached
                // rows only, so both phases bill to `usage_ns`.
                let t_usage = WallTimer::start();
                self.prewarm_usage_rows();
                let usage = self.instantaneous_usage();
                self.obs.registry.inc(self.obs.h.usage_ns, t_usage.elapsed_ns());
                let active = self.circuits.len();
                self.obs.span_end(sp, || vec![("usage", usage.into()), ("active", active.into())]);
                s.cumulative += usage * self.config.tick_ms / 1_000.0;
                s.report.samples.push(Sample {
                    time_ms: now.millis(),
                    network_usage: usage,
                    cumulative_usage: s.cumulative,
                    migrations: s.report.migrations,
                    replacements: s.report.replacements,
                    active_queries: self.circuits.len(),
                });
                if now.after(self.config.tick_ms) <= s.horizon {
                    s.queue.schedule(now.after(self.config.tick_ms), Event::Tick);
                }
            }
            Event::LocalReopt => {
                let t0 = WallTimer::start();
                let sp = self.obs.span_start("reopt.local", Vec::new);
                let placer = RelaxationPlacer::default();
                // Dirty filter: clean circuits would reproduce their last
                // no-op evaluation exactly, so they are skipped outright.
                let eval_idx = self.dirty_circuits(ReoptKind::Local, false);
                // Read-only evaluation, shardable across the pool: each
                // circuit gets a fresh mapper view and a placement clone;
                // nothing shared mutates, so evaluations are independent.
                let results: Vec<(
                    Placement,
                    sbon_core::reopt::LocalReoptOutcome,
                    ReadObservation,
                )> = {
                    let circuits = &self.circuits;
                    let space = &self.space;
                    let mapper = &self.mapper;
                    let placer = &placer;
                    let policy = self.config.policy;
                    let memo = self.config.mapping_memo;
                    run_parallel(&self.pool, &eval_idx, move |i| {
                        let d = &circuits[i];
                        let mut view = mapper.read_view(memo);
                        let mut placement = d.placement.clone();
                        let outcome = reoptimize_local(
                            &d.circuit,
                            &mut placement,
                            space,
                            placer,
                            &mut view,
                            policy,
                        );
                        (placement, outcome, view.into_observation())
                    })
                };
                // Serial commit in circuit order: placements, the
                // reuse-discovery index, deferred catalog traffic, and the
                // relevance verdict (clean record vs dirty-on-mutation).
                let mut moved = 0;
                for (&i, (placement, outcome, obs)) in eval_idx.iter().zip(results) {
                    self.mapper.charge_observed(&obs);
                    let handle = self.circuits[i].handle.0 as u64;
                    if outcome.migrations.is_empty() {
                        if self.config.incremental_reopt {
                            let d = &self.circuits[i];
                            let hosts = circuit_hosts(&d.circuit, &d.placement);
                            self.relevance.record_clean(
                                ReoptKind::Local,
                                handle,
                                ReadSet { spans: obs.spans, hosts, whole_space: obs.whole_space },
                            );
                        }
                        continue;
                    }
                    let d = &mut self.circuits[i];
                    d.placement = placement;
                    // Keep the reuse-discovery index truthful about hosts.
                    if let (Some(mq), Some(id)) = (&mut self.multiquery, d.mq_id) {
                        for m in &outcome.migrations {
                            mq.relocate(id, m.service, m.to, &self.space);
                        }
                    }
                    self.relevance.mark_dirty(handle);
                    moved += outcome.migrations.len();
                }
                self.obs.registry.inc(self.obs.h.local_reopt_ns, t0.elapsed_ns());
                let evaluated = eval_idx.len();
                self.obs.span_end(sp, || {
                    vec![("evaluated", evaluated.into()), ("migrations", moved.into())]
                });
                s.report.migrations += moved;
                s.report.adaptation_cost += moved as f64 * self.config.migration_penalty;
                if let Some(interval) = self.config.reopt_interval_ms {
                    if now.after(interval) <= s.horizon {
                        s.queue.schedule(now.after(interval), Event::LocalReopt);
                    }
                }
            }
            Event::Rewrite => {
                let t0 = WallTimer::start();
                let sp = self.obs.span_start("reopt.rewrite", Vec::new);
                let placer = RelaxationPlacer::default();
                // Tenancy-entangled circuits are not rewritten (a plan swap
                // under live subscriptions would strand tenants); clean ones
                // are skipped by the dirty filter.
                let eval_idx = self.dirty_circuits(ReoptKind::Rewrite, true);
                let results: Vec<(sbon_core::reopt::RewriteOutcome, ReadObservation)> = {
                    let circuits = &self.circuits;
                    let space = &self.space;
                    let mapper = &self.mapper;
                    let placer = &placer;
                    let policy = self.config.policy;
                    let memo = self.config.mapping_memo;
                    run_parallel(&self.pool, &eval_idx, move |i| {
                        let d = &circuits[i];
                        let running_est = d
                            .circuit
                            .cost_with(&d.placement, |a, b| space.vector_distance(a, b))
                            .network_usage;
                        let mut view = mapper.read_view(memo);
                        let outcome = sbon_core::reopt::reoptimize_rewrite(
                            &d.running_plan,
                            running_est,
                            &d.query,
                            space,
                            placer,
                            &mut view,
                            policy,
                        );
                        (outcome, view.into_observation())
                    })
                };
                let mut swaps = 0;
                for (&i, (outcome, obs)) in eval_idx.iter().zip(results) {
                    self.mapper.charge_observed(&obs);
                    let handle = self.circuits[i].handle.0 as u64;
                    if let sbon_core::reopt::RewriteOutcome::Rewrite { replacement, .. } = outcome {
                        let d = &mut self.circuits[i];
                        d.running_plan = replacement.plan.clone();
                        d.circuit = replacement.circuit;
                        d.placement = replacement.placement;
                        d.shared = Vec::new();
                        // The swap invalidates the old registration; the
                        // replacement's operators take its place.
                        if let (Some(mq), Some(id)) = (&mut self.multiquery, d.mq_id) {
                            mq.reregister(id, &d.circuit, &d.placement, &self.space);
                        }
                        self.relevance.mark_dirty(handle);
                        swaps += 1;
                    } else if self.config.incremental_reopt {
                        let d = &self.circuits[i];
                        let hosts = circuit_hosts(&d.circuit, &d.placement);
                        self.relevance.record_clean(
                            ReoptKind::Rewrite,
                            handle,
                            ReadSet { spans: obs.spans, hosts, whole_space: obs.whole_space },
                        );
                    }
                }
                self.obs.registry.inc(self.obs.h.rewrite_ns, t0.elapsed_ns());
                let evaluated = eval_idx.len();
                self.obs.span_end(sp, || {
                    vec![("evaluated", evaluated.into()), ("swaps", swaps.into())]
                });
                s.report.replacements += swaps;
                s.report.adaptation_cost += swaps as f64 * self.config.replacement_penalty;
                if let Some(interval) = self.config.rewrite_interval_ms {
                    if now.after(interval) <= s.horizon {
                        s.queue.schedule(now.after(interval), Event::Rewrite);
                    }
                }
            }
            Event::Fail(node) => {
                let t0 = WallTimer::start();
                let sp =
                    self.obs.span_start("fail", || vec![("node", (node.index() as u64).into())]);
                let evacuated = self.fail_node(node);
                // Evacuation lookups ran through the live mapper: replay
                // them as routed traffic at the failure time.
                self.settle_routed(now);
                self.obs.registry.inc(self.obs.h.evac_ns, t0.elapsed_ns());
                self.obs.span_end(sp, || vec![("evacuated", evacuated.into())]);
                self.obs.flight("runtime", "node_fail", || {
                    format!("node {} failed; {evacuated} operators evacuated", node.index())
                });
                // Evacuations are migrations: charge the same penalty.
                s.report.migrations += evacuated;
                s.report.adaptation_cost += evacuated as f64 * self.config.migration_penalty;
            }
            Event::FullReopt => {
                let t0 = WallTimer::start();
                let sp = self.obs.span_start("reopt.full", Vec::new);
                // See the rewrite pass: no plan swaps under tenancy, and
                // clean circuits skip the whole optimizer run.
                let eval_idx = self.dirty_circuits(ReoptKind::Full, true);
                let results: Vec<(FullReoptOutcome, ReadObservation)> = {
                    let circuits = &self.circuits;
                    let space = &self.space;
                    let mapper = &self.mapper;
                    let policy = self.config.policy;
                    let memo = self.config.mapping_memo;
                    run_parallel(&self.pool, &eval_idx, move |i| {
                        let d = &circuits[i];
                        let running_est = d
                            .circuit
                            .cost_with(&d.placement, |a, b| space.vector_distance(a, b))
                            .network_usage;
                        let mut view = mapper.read_view(memo);
                        let outcome = reoptimize_full(
                            running_est,
                            &d.query,
                            space,
                            &mut view,
                            OptimizerConfig::default(),
                            policy,
                        );
                        (outcome, view.into_observation())
                    })
                };
                let mut swaps = 0;
                for (&i, (outcome, obs)) in eval_idx.iter().zip(results) {
                    self.mapper.charge_observed(&obs);
                    let handle = self.circuits[i].handle.0 as u64;
                    if let FullReoptOutcome::Replace { replacement, .. } = outcome {
                        let d = &mut self.circuits[i];
                        d.circuit = replacement.circuit;
                        d.placement = replacement.placement;
                        d.shared = Vec::new();
                        if let (Some(mq), Some(id)) = (&mut self.multiquery, d.mq_id) {
                            mq.reregister(id, &d.circuit, &d.placement, &self.space);
                        }
                        self.relevance.mark_dirty(handle);
                        swaps += 1;
                    } else if self.config.incremental_reopt {
                        let d = &self.circuits[i];
                        let hosts = circuit_hosts(&d.circuit, &d.placement);
                        self.relevance.record_clean(
                            ReoptKind::Full,
                            handle,
                            ReadSet { spans: obs.spans, hosts, whole_space: obs.whole_space },
                        );
                    }
                }
                self.obs.registry.inc(self.obs.h.full_reopt_ns, t0.elapsed_ns());
                let evaluated = eval_idx.len();
                self.obs.span_end(sp, || {
                    vec![("evaluated", evaluated.into()), ("swaps", swaps.into())]
                });
                s.report.replacements += swaps;
                s.report.adaptation_cost += swaps as f64 * self.config.replacement_penalty;
                if let Some(interval) = self.config.full_reopt_interval_ms {
                    if now.after(interval) <= s.horizon {
                        s.queue.schedule(now.after(interval), Event::FullReopt);
                    }
                }
            }
        }
    }

    /// One tick of environment dynamics. Cost-point maintenance is
    /// delta-driven: only the nodes the churn touched are recomputed, and
    /// only the points that actually changed are re-registered with the
    /// mapper — work proportional to the churned set, not the overlay.
    fn apply_churn(&mut self) {
        // Deployment wave: admit this tick's arrivals before churn so a
        // node can report load the tick it joins. Each arrival is one
        // O(log n) mapper registration (`add_node`), preceded — under
        // landmark mode — by a join-time Vivaldi placement against the
        // frozen landmarks that gives the node its vector coordinate the
        // moment it becomes mappable.
        if let DeploymentModel::Wave { joins_per_tick, .. } = self.config.deployment {
            let t_join = WallTimer::start();
            let mut joined = 0;
            while joined < joins_per_tick {
                let Some(node) = self.pending_joins.pop_front() else { break };
                if !self.alive[node.index()] {
                    continue; // failed before arrival: never joins
                }
                self.arrived[node.index()] = true;
                if let Some(placer) = &self.placer {
                    // Landmarks froze their coordinates at construction;
                    // everyone else is placed on arrival with a per-node
                    // RNG stream, so join order and batching cannot move
                    // the landing spot.
                    if !placer.landmark_ids().contains(&node.index()) {
                        let mut rng = derive_rng(self.seed, PLACE_STREAM ^ node.index() as u64);
                        let state = placer.place(&self.latency.provider(), node, &mut rng);
                        self.space.set_vector_coord(node, &state.coord);
                    }
                }
                // The arrival's catalog registration can change lookups
                // whose scanned region covers its key: invalidate exactly
                // those clean records (everything, under the oracle scan).
                match &mut self.mapper {
                    MapperState::Dht(m) => {
                        let (old, new) = m.update_node_traced(&self.space, node);
                        debug_assert!(old.is_none(), "a joining node cannot be registered yet");
                        self.relevance.touch_key(new);
                    }
                    MapperState::Oracle(m) => {
                        m.add_node(&self.space, node);
                        self.relevance.touch_all();
                    }
                    MapperState::Routed(m) => {
                        let (old, new) = m.update_node_traced(&self.space, node);
                        debug_assert!(old.is_none(), "a joining node cannot be registered yet");
                        self.relevance.touch_key(new);
                    }
                }
                joined += 1;
            }
            self.obs.registry.inc(self.obs.h.nodes_joined, joined as u64);
            self.obs.registry.inc(self.obs.h.join_ns, t_join.elapsed_ns());
            if joined > 0 {
                self.obs.point("join.admit", || vec![("joined", joined.into())]);
            }
        }
        let dirty = self.config.churn.tick_dirty(&mut self.attrs, &mut self.rng);
        // Timing starts after the churn simulation itself: refresh_ns bills
        // only the control plane's reaction (point refresh + mapper sync).
        let t0 = WallTimer::start();
        self.obs.registry.inc(self.obs.h.ticks, 1);
        self.obs.registry.inc(self.obs.h.dirty_nodes, dirty.len() as u64);
        self.obs.registry.observe(self.obs.h.dirty_per_tick, dirty.len() as f64);
        // Dead nodes must not be re-registered with the mapper — their
        // catalog entry was removed on failure — and nodes still waiting
        // in the deployment wave are not registered yet.
        let dirty: Vec<NodeId> = dirty
            .into_iter()
            .filter(|node| self.alive[node.index()] && self.arrived[node.index()])
            .collect();
        // Evaluate the dirty points' scalar values in parallel (pure reads
        // of the space and the attribute table), then commit serially in
        // dirty order: bit-identical to the serial update at any thread
        // count, with the mapper only re-registering real changes.
        let values: Vec<Vec<f64>> = {
            let space = &self.space;
            let attrs = &self.attrs;
            let compute = |node: &NodeId| space.scalar_values(*node, attrs);
            match &self.pool {
                Some(pool) if dirty.len() > 1 => {
                    pool.install(|| dirty.par_iter().map(compute).collect())
                }
                _ => dirty.iter().map(compute).collect(),
            }
        };
        let mut updated = 0u64;
        for (&node, vals) in dirty.iter().zip(&values) {
            if self.space.apply_scalars(node, vals) {
                // Relevance invalidation rides the mapper sync: the moved
                // registration stabs clean records whose scanned ring
                // region covers either key, and the changed cost point
                // stabs every record that read this host's estimate.
                match &mut self.mapper {
                    MapperState::Dht(m) => {
                        let (old, new) = m.update_node_traced(&self.space, node);
                        if let Some(old) = old {
                            self.relevance.touch_key(old);
                        }
                        self.relevance.touch_key(new);
                    }
                    MapperState::Oracle(m) => {
                        m.update_node(&self.space, node);
                        self.relevance.touch_all();
                    }
                    MapperState::Routed(m) => {
                        let (old, new) = m.update_node_traced(&self.space, node);
                        if let Some(old) = old {
                            self.relevance.touch_key(old);
                        }
                        self.relevance.touch_key(new);
                    }
                }
                self.relevance.touch_host(node);
                updated += 1;
            }
        }
        self.obs.registry.inc(self.obs.h.points_updated, updated);
        self.obs.registry.inc(self.obs.h.refresh_ns, t0.elapsed_ns());
        let dirty_count = dirty.len();
        self.obs.point("churn.refresh", || {
            vec![("dirty", dirty_count.into()), ("updated", updated.into())]
        });
        let Some(jitter) = self.config.latency_jitter else {
            return;
        };
        if jitter.edges_per_tick == 0 {
            return;
        }
        // One shared edge-granular delta sequence; the backends differ only
        // in how they bring their derived state up to date.
        let rng = &mut self.rng;
        let deltas = match &self.latency {
            LatencyState::Dense { graph, base_edges, .. } => {
                sample_edge_deltas(rng, &jitter, graph, |e| base_edges[e.index()])
            }
            LatencyState::Lazy(lazy) => {
                sample_edge_deltas(rng, &jitter, lazy.graph(), |e| lazy.base_edge_latency(e))
            }
        };
        if deltas.is_empty() {
            return;
        }
        let delta_count = deltas.len();
        match &mut self.latency {
            LatencyState::Dense { current, graph, .. } => {
                for &(e, w) in &deltas {
                    graph.set_edge_latency(e, w);
                }
                *current = all_pairs_latency(graph);
                self.obs.point("latency.repair", || {
                    vec![("edges", delta_count.into()), ("dense_rebuild", 1u64.into())]
                });
            }
            LatencyState::Lazy(lazy) => {
                let before = lazy.stats();
                lazy.apply_edge_deltas(&deltas);
                let after = lazy.stats();
                let repaired = after.rows_repaired - before.rows_repaired;
                let rebuilt = after.rows_rebuilt - before.rows_rebuilt;
                self.obs.point("latency.repair", || {
                    vec![
                        ("edges", delta_count.into()),
                        ("rows_repaired", repaired.into()),
                        ("rows_rebuilt", rebuilt.into()),
                    ]
                });
            }
        }
    }
}

impl Drop for OverlayRuntime {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Post-mortem: dump the flight recorder's ring to stderr so the
            // last control-plane decisions survive the crash. The trace is
            // deliberately NOT finished here — flushing a sink can itself
            // panic, and a panic-during-panic aborts the process.
            if let Some(flight) = &self.obs.flight {
                if !flight.is_empty() {
                    eprintln!("{}", flight.dump());
                }
            }
        } else if let Some(tracer) = self.obs.tracer.take() {
            // Clean shutdown without an explicit `finish_trace()` call:
            // flush buffered trace events so JSONL files are complete.
            tracer.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_netsim::topology::transit_stub::{generate, TransitStubConfig};

    fn small_world(seed: u64) -> Topology {
        generate(&TransitStubConfig::with_total_nodes(80), seed)
    }

    fn demo_query(topo: &Topology) -> QuerySpec {
        let hosts = topo.host_candidates();
        QuerySpec::join_star(&[hosts[0], hosts[10], hosts[20], hosts[30]], hosts[40], 10.0, 0.02)
    }

    #[test]
    fn deploy_and_run_produces_samples() {
        let topo = small_world(1);
        let mut rt = OverlayRuntime::new(
            &topo,
            1,
            RuntimeConfig { horizon_ms: 10_000.0, ..Default::default() },
        );
        let q = demo_query(&topo);
        rt.deploy(q).unwrap();
        let report = rt.run();
        assert_eq!(report.samples.len(), 10);
        assert!(report.samples.iter().all(|s| s.network_usage > 0.0));
        // Cumulative usage must be non-decreasing.
        for w in report.samples.windows(2) {
            assert!(w[1].cumulative_usage >= w[0].cumulative_usage);
        }
    }

    #[test]
    fn run_is_deterministic() {
        let topo = small_world(2);
        let build = || {
            let mut rt = OverlayRuntime::new(
                &topo,
                7,
                RuntimeConfig { horizon_ms: 8_000.0, ..Default::default() },
            );
            rt.deploy(demo_query(&topo)).unwrap();
            rt.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.network_usage, y.network_usage);
        }
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn no_reopt_means_no_migrations() {
        let topo = small_world(3);
        let mut rt = OverlayRuntime::new(
            &topo,
            3,
            RuntimeConfig {
                horizon_ms: 10_000.0,
                reopt_interval_ms: None,
                full_reopt_interval_ms: None,
                ..Default::default()
            },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        let report = rt.run();
        assert_eq!(report.migrations, 0);
        assert_eq!(report.replacements, 0);
        assert_eq!(report.adaptation_cost, 0.0);
    }

    #[test]
    fn static_network_without_churn_has_constant_usage() {
        let topo = small_world(4);
        let mut rt = OverlayRuntime::new(
            &topo,
            4,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                churn: ChurnProcess::None,
                latency_jitter: None,
                reopt_interval_ms: None,
                ..Default::default()
            },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        let report = rt.run();
        let first = report.samples[0].network_usage;
        assert!(report.samples.iter().all(|s| (s.network_usage - first).abs() < 1e-9));
    }

    #[test]
    fn latency_jitter_moves_usage() {
        let topo = small_world(5);
        let mut rt = OverlayRuntime::new(
            &topo,
            5,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                churn: ChurnProcess::None,
                latency_jitter: Some(JitterModel {
                    // Gradual edge inflation: a small slice of the
                    // ~100-edge underlay rescales upward each tick, so
                    // usage keeps rising across the horizon instead of
                    // saturating the band inside tick 1.
                    edges_per_tick: 25,
                    factor_range: (1.5, 2.0),
                    band: (0.5, 3.0),
                }),
                reopt_interval_ms: None,
                ..Default::default()
            },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        let report = rt.run();
        let first = report.samples[0].network_usage;
        let last = report.samples.last().unwrap().network_usage;
        assert!(last > first, "persistent inflation must raise usage: {first} -> {last}");
    }

    #[test]
    fn multiple_circuits_add_usage() {
        let topo = small_world(6);
        let mut rt = OverlayRuntime::new(
            &topo,
            6,
            RuntimeConfig { horizon_ms: 3_000.0, churn: ChurnProcess::None, ..Default::default() },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        let one = rt.instantaneous_usage();
        rt.deploy(demo_query(&topo)).unwrap();
        let two = rt.instantaneous_usage();
        assert!(two > one * 1.5, "second circuit must add usage: {one} -> {two}");
    }

    #[test]
    fn failing_an_operator_host_evacuates_the_service() {
        // Deterministically scan seeds for a deployment where some unpinned
        // service lives apart from every pinned (producer/consumer) host —
        // killing a pinned host would tear the circuit down instead of
        // evacuating, which is not the scenario under test.
        let (mut rt, handle, victim) = (7u64..32)
            .find_map(|seed| {
                let topo = small_world(seed);
                let mut rt = OverlayRuntime::new(
                    &topo,
                    seed,
                    RuntimeConfig {
                        horizon_ms: 5_000.0,
                        churn: ChurnProcess::None,
                        reopt_interval_ms: None,
                        ..Default::default()
                    },
                );
                let handle = rt.deploy(demo_query(&topo))?;
                let placement = rt.placement(handle)?.clone();
                let d = &rt.circuits[0];
                let pinned: Vec<NodeId> = d
                    .circuit
                    .services()
                    .iter()
                    .filter_map(|s| match s.pin {
                        sbon_core::circuit::ServicePin::Pinned(n) => Some(n),
                        sbon_core::circuit::ServicePin::Unpinned => None,
                    })
                    .collect();
                let victim = d
                    .circuit
                    .unpinned_services()
                    .iter()
                    .map(|&sid| placement.node_of(sid))
                    .find(|n| !pinned.contains(n))?;
                Some((rt, handle, victim))
            })
            .expect("some seed separates an unpinned service from the pinned hosts");
        rt.schedule_failure(2_000.0, victim);
        let report = rt.run();
        assert!(!rt.is_alive(victim));
        assert!(report.migrations >= 1, "evacuation counts as migration");
        // The circuit survived and no service remains on the dead node.
        let after = rt.placement(handle).unwrap();
        assert!(after.as_slice().iter().all(|&n| n != victim));
        assert!(rt.failed_circuits().is_empty());
    }

    #[test]
    fn failing_a_producer_kills_the_circuit() {
        let topo = small_world(8);
        let mut rt = OverlayRuntime::new(
            &topo,
            8,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                churn: ChurnProcess::None,
                reopt_interval_ms: None,
                ..Default::default()
            },
        );
        let q = demo_query(&topo);
        let producer = q.producer_of(sbon_query::stream::StreamId(0));
        let handle = rt.deploy(q).unwrap();
        rt.schedule_failure(2_000.0, producer);
        let report = rt.run();
        assert_eq!(rt.failed_circuits(), &[handle]);
        assert!(rt.placement(handle).is_none(), "dead circuits have no placement");
        // Usage drops to zero once the only circuit is gone.
        let last = report.samples.last().unwrap();
        assert_eq!(last.network_usage, 0.0);
    }

    #[test]
    fn rewrite_adaptation_runs_and_preserves_query_semantics() {
        let topo = small_world(10);
        let mut rt = OverlayRuntime::new(
            &topo,
            10,
            RuntimeConfig {
                horizon_ms: 30_000.0,
                reopt_interval_ms: None,
                rewrite_interval_ms: Some(5_000.0),
                churn: ChurnProcess::RandomWalk { std_dev: 0.15 },
                latency_jitter: Some(JitterModel { edges_per_tick: 500, ..Default::default() }),
                ..Default::default()
            },
        );
        let q = demo_query(&topo);
        let sources_before: Vec<_> = q.join_set.clone();
        let handle = rt.deploy(q).unwrap();
        let plan_before = rt.circuits[0].running_plan.clone();
        let report = rt.run();
        // Whether or not a rewrite fired (churn-dependent), the running plan
        // must still cover exactly the original sources.
        let plan_after = &rt.circuits[0].running_plan;
        let mut srcs = plan_after.sources();
        srcs.sort();
        let mut expect = sources_before;
        expect.sort();
        assert_eq!(srcs, expect);
        assert!(rt.placement(handle).is_some());
        // Replacements counted if any happened.
        if plan_after.render() != plan_before.render() {
            assert!(report.replacements > 0);
        }
    }

    /// Without jitter the two backends see bit-identical latencies at every
    /// query, so entire runs — embedding, deployment, churn, re-opt — must
    /// produce bit-identical reports.
    #[test]
    fn lazy_backend_run_is_bit_identical_to_dense() {
        let topo = small_world(11);
        let run = |backend| {
            let mut rt = OverlayRuntime::new(
                &topo,
                11,
                RuntimeConfig {
                    horizon_ms: 10_000.0,
                    latency_backend: backend,
                    ..Default::default()
                },
            );
            rt.deploy(demo_query(&topo)).unwrap();
            rt.run()
        };
        let dense = run(LatencyBackend::Dense);
        let lazy = run(LatencyBackend::Lazy);
        assert_eq!(dense.samples.len(), lazy.samples.len());
        for (d, l) in dense.samples.iter().zip(&lazy.samples) {
            assert_eq!(d.network_usage, l.network_usage);
            assert_eq!(d.cumulative_usage, l.cumulative_usage);
        }
        assert_eq!(dense.migrations, lazy.migrations);
        assert_eq!(dense.replacements, lazy.replacements);
    }

    #[test]
    fn lazy_backend_jitter_run_is_deterministic_and_moves_usage() {
        let topo = small_world(12);
        let run = || {
            let mut rt = OverlayRuntime::new(
                &topo,
                12,
                RuntimeConfig {
                    horizon_ms: 6_000.0,
                    churn: ChurnProcess::None,
                    reopt_interval_ms: None,
                    latency_backend: LatencyBackend::Lazy,
                    latency_jitter: Some(JitterModel {
                        // Gradual edge inflation: a small slice of the
                        // ~100-edge underlay rescales upward each tick, so
                        // usage keeps rising across the horizon instead of
                        // saturating the band inside tick 1.
                        edges_per_tick: 25,
                        factor_range: (1.5, 2.0),
                        band: (0.5, 3.0),
                    }),
                    ..Default::default()
                },
            );
            rt.deploy(demo_query(&topo)).unwrap();
            let report = rt.run();
            let stats = rt.lazy_latency_stats().expect("lazy backend exposes stats");
            (report, stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.network_usage, y.network_usage);
        }
        assert_eq!(sa, sb);
        let first = a.samples[0].network_usage;
        let last = a.samples.last().unwrap().network_usage;
        assert!(last > first, "persistent edge inflation must raise usage: {first} -> {last}");
        assert!(
            sa.rows_repaired + sa.rows_rebuilt > 0,
            "edge jitter must repair cached rows in place"
        );
        assert_eq!(sa.rows_invalidated, 0, "the repair policy never drops rows on deltas");
    }

    #[test]
    fn lazy_row_cache_capacity_is_respected() {
        let topo = small_world(13);
        let mut rt = OverlayRuntime::new(
            &topo,
            13,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                latency_backend: LatencyBackend::Lazy,
                lazy_row_cache: Some(4),
                ..Default::default()
            },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        rt.run();
        let stats = rt.lazy_latency_stats().unwrap();
        assert!(stats.rows_cached <= 4, "cache holds {} rows", stats.rows_cached);
        assert!(rt.lazy_latency_stats().is_some());
        // Dense runtimes expose no lazy stats.
        let dense = OverlayRuntime::new(&topo, 13, RuntimeConfig::default());
        assert!(dense.lazy_latency_stats().is_none());
    }

    #[test]
    fn default_backend_is_dht_and_charges_catalog_traffic() {
        let topo = small_world(14);
        let mut rt = OverlayRuntime::new(
            &topo,
            14,
            RuntimeConfig { horizon_ms: 5_000.0, ..Default::default() },
        );
        assert_eq!(rt.mapper_name(), "hilbert-dht");
        rt.deploy(demo_query(&topo)).unwrap();
        let stats = rt.dht_stats().expect("dht backend exposes catalog stats");
        assert!(stats.lookups > 0, "deployment must route through the catalog");
    }

    #[test]
    fn oracle_backend_runs_and_exposes_no_dht_stats() {
        let topo = small_world(15);
        let mut rt = OverlayRuntime::new(
            &topo,
            15,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                mapper_backend: MapperBackend::Oracle,
                ..Default::default()
            },
        );
        assert_eq!(rt.mapper_name(), "live-oracle");
        rt.deploy(demo_query(&topo)).unwrap();
        assert!(rt.dht_stats().is_none());
        let report = rt.run();
        assert_eq!(report.samples.len(), 5);
    }

    #[test]
    fn control_plane_stats_track_churned_nodes_only() {
        let topo = small_world(16);
        let n = topo.num_nodes();
        let run = |churn: ChurnProcess| {
            let mut rt = OverlayRuntime::new(
                &topo,
                16,
                RuntimeConfig {
                    horizon_ms: 10_000.0,
                    churn,
                    reopt_interval_ms: None,
                    ..Default::default()
                },
            );
            rt.deploy(demo_query(&topo)).unwrap();
            rt.run();
            rt.control_plane_stats()
        };
        let none = run(ChurnProcess::None);
        assert_eq!(none.dirty_nodes, 0);
        assert_eq!(none.points_updated, 0);
        assert_eq!(none.ticks, 10);

        let sparse = run(ChurnProcess::SparseWalk { nodes_per_tick: 4, std_dev: 0.2 });
        assert_eq!(sparse.dirty_nodes, 4 * 10, "sparse churn dirties its budget per tick");
        assert!(sparse.points_updated <= sparse.dirty_nodes);
        assert!(sparse.points_updated > 0);

        let full = run(ChurnProcess::RandomWalk { std_dev: 0.2 });
        assert_eq!(full.dirty_nodes, n * 10, "a full walk dirties every node every tick");
        assert!(
            sparse.dirty_nodes < full.dirty_nodes / 10,
            "delta maintenance must track churn, not overlay size"
        );
    }

    #[test]
    fn high_dimensional_space_caps_dht_bits_instead_of_panicking() {
        // 10 Vivaldi dims + 1 scalar = 11 dims; a fixed 12-bit grid would
        // need 132 key bits. The runtime must degrade to a coarser grid.
        let topo = small_world(18);
        let mut rt = OverlayRuntime::new(
            &topo,
            18,
            RuntimeConfig {
                horizon_ms: 3_000.0,
                vivaldi: VivaldiConfig { dims: 10, ..Default::default() },
                ..Default::default()
            },
        );
        assert_eq!(rt.mapper_name(), "hilbert-dht");
        rt.deploy(demo_query(&topo)).unwrap();
        let report = rt.run();
        assert_eq!(report.samples.len(), 3);
    }

    #[test]
    fn dht_evacuation_never_lands_on_dead_nodes() {
        // Kill several hosts mid-run under the DHT backend with churn and
        // re-opt active: every surviving placement must be on live nodes.
        let topo = small_world(17);
        let mut rt = OverlayRuntime::new(
            &topo,
            17,
            RuntimeConfig { horizon_ms: 20_000.0, ..Default::default() },
        );
        let handles: Vec<_> = (0..2).filter_map(|_| rt.deploy(demo_query(&topo))).collect();
        let victims = [topo.host_candidates()[55], topo.host_candidates()[61]];
        rt.schedule_failure(3_000.0, victims[0]);
        rt.schedule_failure(9_000.0, victims[1]);
        rt.run();
        for &h in &handles {
            if let Some(p) = rt.placement(h) {
                assert!(p.as_slice().iter().all(|&n| rt.is_alive(n)));
            }
        }
    }

    /// Deployment wave: the overlay grows over ticks, every admitted node
    /// registers with the mapper, and placements stay confined to arrived
    /// nodes throughout.
    #[test]
    fn deployment_wave_grows_the_overlay_over_ticks() {
        let topo = small_world(20);
        let n = topo.num_nodes();
        let mut rt = OverlayRuntime::new(
            &topo,
            20,
            RuntimeConfig {
                horizon_ms: 10_000.0,
                deployment: DeploymentModel::Wave { initial: 30, joins_per_tick: 10 },
                churn: ChurnProcess::SparseWalk { nodes_per_tick: 8, std_dev: 0.1 },
                ..Default::default()
            },
        );
        assert_eq!(rt.arrived_count(), 30);
        // Deploy a query pinned on arrived hosts only.
        let hosts: Vec<NodeId> =
            topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
        assert!(hosts.len() >= 5, "initial wave must include some stub hosts");
        let q =
            QuerySpec::join_star(&[hosts[0], hosts[1], hosts[2], hosts[3]], hosts[4], 10.0, 0.02);
        let handle = rt.deploy(q).unwrap();
        // Everything mapped so far must be on arrived nodes.
        let placed = rt.placement(handle).unwrap().clone();
        assert!(placed.as_slice().iter().all(|&node| rt.is_arrived(node)));
        let report = rt.run();
        assert_eq!(report.samples.len(), 10);
        // 30 initial + 10 ticks × 10 joins ≥ 80 total: everyone arrived.
        assert_eq!(rt.arrived_count(), n);
        let cp = rt.control_plane_stats();
        assert_eq!(cp.nodes_joined, n - 30, "every pending node joined exactly once");
        // The DHT catalog holds the whole overlay after the wave.
        assert_eq!(rt.mapper_name(), "hilbert-dht");
    }

    /// With `joins_per_tick: 0` the wave never advances: the runtime must
    /// keep every placement confined to the initial membership.
    #[test]
    fn stalled_wave_confines_placements_to_initial_members() {
        let topo = small_world(21);
        let mut rt = OverlayRuntime::new(
            &topo,
            21,
            RuntimeConfig {
                horizon_ms: 10_000.0,
                deployment: DeploymentModel::Wave { initial: 40, joins_per_tick: 0 },
                ..Default::default()
            },
        );
        let hosts: Vec<NodeId> =
            topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
        let q =
            QuerySpec::join_star(&[hosts[0], hosts[1], hosts[2], hosts[3]], hosts[4], 10.0, 0.02);
        let handle = rt.deploy(q).unwrap();
        rt.run();
        assert_eq!(rt.arrived_count(), 40);
        assert_eq!(rt.control_plane_stats().nodes_joined, 0);
        let placed = rt.placement(handle).unwrap();
        assert!(
            placed.as_slice().iter().all(|&node| rt.is_arrived(node)),
            "re-optimization must never migrate onto an unarrived node"
        );
    }

    #[test]
    fn deployment_wave_is_deterministic() {
        let topo = small_world(22);
        let run = || {
            let mut rt = OverlayRuntime::new(
                &topo,
                22,
                RuntimeConfig {
                    horizon_ms: 8_000.0,
                    deployment: DeploymentModel::Wave { initial: 25, joins_per_tick: 7 },
                    churn: ChurnProcess::SparseWalk { nodes_per_tick: 4, std_dev: 0.1 },
                    ..Default::default()
                },
            );
            let hosts: Vec<NodeId> =
                topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
            let q = QuerySpec::join_star(
                &[hosts[0], hosts[1], hosts[2], hosts[3]],
                hosts[4],
                10.0,
                0.02,
            );
            rt.deploy(q).unwrap();
            let report = rt.run();
            (report, rt.control_plane_stats())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(ca.nodes_joined, cb.nodes_joined);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.network_usage, y.network_usage);
        }
    }

    /// A wave under the oracle backend behaves the same way: unarrived
    /// nodes are invisible to mapping until admitted.
    #[test]
    fn deployment_wave_works_under_oracle_backend() {
        let topo = small_world(23);
        let n = topo.num_nodes();
        let mut rt = OverlayRuntime::new(
            &topo,
            23,
            RuntimeConfig {
                horizon_ms: 10_000.0,
                deployment: DeploymentModel::Wave { initial: 20, joins_per_tick: 20 },
                mapper_backend: MapperBackend::Oracle,
                ..Default::default()
            },
        );
        assert_eq!(rt.mapper_name(), "live-oracle");
        let hosts: Vec<NodeId> =
            topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
        let q =
            QuerySpec::join_star(&[hosts[0], hosts[1], hosts[2], hosts[3]], hosts[4], 10.0, 0.02);
        rt.deploy(q).unwrap();
        rt.run();
        assert_eq!(rt.arrived_count(), n);
        assert_eq!(rt.control_plane_stats().nodes_joined, n - 20);
    }

    /// A node that fails while still queued in the wave must never join.
    #[test]
    fn failed_pending_node_never_joins() {
        let topo = small_world(24);
        let n = topo.num_nodes();
        let mut rt = OverlayRuntime::new(
            &topo,
            24,
            RuntimeConfig {
                horizon_ms: 10_000.0,
                deployment: DeploymentModel::Wave { initial: 10, joins_per_tick: 20 },
                churn: ChurnProcess::None,
                reopt_interval_ms: None,
                ..Default::default()
            },
        );
        let victim = (0..n as u32)
            .map(NodeId)
            .find(|&node| !rt.is_arrived(node))
            .expect("some node is still pending");
        rt.schedule_failure(500.0, victim); // before the first join tick
        rt.run();
        assert!(!rt.is_alive(victim));
        assert!(!rt.is_arrived(victim), "a dead pending node must not arrive");
        assert_eq!(rt.arrived_count(), n - 1);
    }

    /// deploy → undeploy restores instantaneous usage bit-identically and
    /// redeploying the same query reproduces the original placement.
    #[test]
    fn undeploy_restores_usage_and_redeploy_is_identical() {
        let topo = small_world(30);
        let mut rt = OverlayRuntime::new(
            &topo,
            30,
            RuntimeConfig { horizon_ms: 5_000.0, churn: ChurnProcess::None, ..Default::default() },
        );
        let baseline = rt.deploy(demo_query(&topo)).unwrap();
        let usage_before = rt.instantaneous_usage();
        let h = rt.deploy(demo_query(&topo)).unwrap();
        let usage_with = rt.instantaneous_usage();
        let placement_first = rt.placement(h).unwrap().clone();
        assert!(usage_with > usage_before);
        assert!(rt.undeploy(h));
        assert_eq!(rt.instantaneous_usage().to_bits(), usage_before.to_bits());
        assert!(!rt.undeploy(h), "double undeploy must fail");
        let h2 = rt.deploy(demo_query(&topo)).unwrap();
        assert_eq!(rt.placement(h2).unwrap(), &placement_first);
        assert_eq!(rt.instantaneous_usage().to_bits(), usage_with.to_bits());
        let stats = rt.lifecycle_stats();
        assert_eq!((stats.arrivals, stats.departures), (3, 1));
        assert_eq!(rt.active_queries(), 2);
        let _ = baseline;
    }

    /// With reuse enabled, identical queries attach to the running join,
    /// the marginal cost tally stays below standalone, and full departure
    /// drains every refcount and returns usage to the pre-workload state.
    #[test]
    fn reuse_tenancy_attaches_and_drains_to_baseline() {
        let topo = small_world(31);
        let mut rt = OverlayRuntime::new(
            &topo,
            31,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                churn: ChurnProcess::None,
                reuse: ReuseScope::All,
                ..Default::default()
            },
        );
        let baseline = rt.instantaneous_usage();
        assert_eq!(baseline, 0.0);
        let q = demo_query(&topo);
        let a = rt.deploy(q.clone()).unwrap();
        let b = rt.deploy(q.clone()).unwrap();
        let stats = rt.lifecycle_stats();
        assert_eq!(stats.reuse_hits, 1, "the second identical query attaches");
        assert!(stats.marginal_usage < stats.standalone_usage);
        let mq = rt.multiquery().expect("reuse registry active");
        assert_eq!(mq.total_subscriptions(), 1);

        // Owner departs first: the shared join is retained for b.
        assert!(rt.undeploy(a));
        assert_eq!(rt.retained_shared_subtrees(), 1);
        assert!(rt.instantaneous_usage() > 0.0, "retained subtree keeps accruing usage");
        // Last subscriber departs: everything drains to the baseline.
        assert!(rt.undeploy(b));
        assert_eq!(rt.retained_shared_subtrees(), 0);
        assert_eq!(rt.active_queries(), 0);
        assert_eq!(rt.instantaneous_usage().to_bits(), baseline.to_bits());
        let mq = rt.multiquery().unwrap();
        assert_eq!(mq.total_subscriptions(), 0);
        assert_eq!(mq.num_instances(), 0);
        assert_eq!(mq.num_retained(), 0);
    }

    /// A tenancy pin is lifted once the last subscriber departs: the
    /// owner's instance is migratable again, and the borrower's phantom
    /// copies of the shared subtree are co-pinned at the instance's host.
    #[test]
    fn tenancy_pin_is_lifted_when_refcount_drains() {
        let topo = small_world(33);
        let mut rt = OverlayRuntime::new(
            &topo,
            33,
            RuntimeConfig {
                horizon_ms: 5_000.0,
                churn: ChurnProcess::None,
                reuse: ReuseScope::All,
                ..Default::default()
            },
        );
        let q = demo_query(&topo);
        rt.deploy(q.clone()).unwrap();
        let owner_unpinned_before = rt.circuits[0].circuit.unpinned_services();
        assert!(!owner_unpinned_before.is_empty(), "owner operators start unpinned");
        let b = rt.deploy(q).unwrap();
        // The subscribed instance is pinned in the owner's circuit...
        assert!(
            rt.circuits[0].circuit.unpinned_services().len() < owner_unpinned_before.len(),
            "subscription must pin the reused instance"
        );
        // ...and the borrower's shared subtree is fully pinned (phantoms
        // co-located with the instance: no phantom migrations possible).
        let borrower = &rt.circuits[1];
        for (idx, &is_shared) in borrower.shared.iter().enumerate() {
            if is_shared {
                assert!(!borrower.circuit.service(ServiceId(idx as u32)).is_unpinned());
            }
        }
        assert!(rt.undeploy(b));
        assert_eq!(
            rt.circuits[0].circuit.unpinned_services(),
            owner_unpinned_before,
            "draining the refcount must lift the tenancy pin"
        );
    }

    /// Failure cascades through tenancy: killing the node that hosts a
    /// reused instance tears down the owner AND its subscribers, and a
    /// retained subtree with a service on the dead node drains instead of
    /// accruing usage (or serving reuse) forever.
    #[test]
    fn failure_of_shared_instance_host_cascades_to_subscribers() {
        let topo = small_world(34);
        let mut rt = OverlayRuntime::new(
            &topo,
            34,
            RuntimeConfig {
                horizon_ms: 8_000.0,
                churn: ChurnProcess::None,
                reopt_interval_ms: None,
                reuse: ReuseScope::All,
                ..Default::default()
            },
        );
        let q = demo_query(&topo);
        let a = rt.deploy(q.clone()).unwrap();
        let b = rt.deploy(q.clone()).unwrap();
        assert_eq!(rt.lifecycle_stats().reuse_hits, 1);
        // Find the shared instance's host: the node the borrower's reused
        // root is pinned at (an operator host, not a producer/consumer).
        let pinned_ops: Vec<NodeId> = rt.circuits[1]
            .circuit
            .services()
            .iter()
            .filter(|s| matches!(s.kind, sbon_core::circuit::ServiceKind::Operator { .. }))
            .filter_map(|s| match s.pin {
                sbon_core::circuit::ServicePin::Pinned(n) => Some(n),
                sbon_core::circuit::ServicePin::Unpinned => None,
            })
            .collect();
        let victim = *pinned_ops.first().expect("borrower has a pinned shared instance");
        // Owner departs first so the instance survives only as a retained
        // shared subtree, then the host dies mid-run.
        assert!(rt.undeploy(a));
        assert_eq!(rt.retained_shared_subtrees(), 1);
        rt.schedule_failure(2_000.0, victim);
        rt.run();
        assert!(!rt.is_alive(victim));
        // The retained subtree is gone, the subscriber was torn down, and
        // the registry holds nothing stale.
        assert_eq!(rt.retained_shared_subtrees(), 0);
        assert_eq!(rt.active_queries(), 0);
        assert!(rt.failed_circuits().contains(&b));
        let mq = rt.multiquery().unwrap();
        assert_eq!(mq.num_instances(), 0, "no stale instance may serve future reuse");
        assert_eq!(mq.total_subscriptions(), 0);
        assert_eq!(mq.num_retained(), 0);
        assert_eq!(rt.instantaneous_usage(), 0.0);
    }

    /// Plan-replacement adaptation stays alive under reuse for untenanted
    /// circuits: a run with full re-opt + rewrite enabled, churn, and no
    /// overlapping queries keeps the registry consistent with the live
    /// circuit set whether or not swaps fire.
    #[test]
    fn adaptation_under_reuse_keeps_registry_consistent() {
        let topo = small_world(35);
        let hosts = topo.host_candidates();
        let mut rt = OverlayRuntime::new(
            &topo,
            35,
            RuntimeConfig {
                horizon_ms: 30_000.0,
                churn: ChurnProcess::RandomWalk { std_dev: 0.35 },
                full_reopt_interval_ms: Some(3_000.0),
                rewrite_interval_ms: Some(4_000.0),
                policy: sbon_core::reopt::ReoptPolicy {
                    migration_threshold: 0.05,
                    // Any strictly-better circuit replaces: guarantees the
                    // swap → reregister path actually runs.
                    replacement_threshold: 0.0,
                },
                reuse: ReuseScope::All,
                ..Default::default()
            },
        );
        // Disjoint producer sets: no reuse possible, nothing entangled.
        let qa = QuerySpec::join_star(&[hosts[0], hosts[5], hosts[10]], hosts[15], 10.0, 0.02);
        let qb = QuerySpec::join_star(&[hosts[20], hosts[25], hosts[30]], hosts[35], 10.0, 0.02);
        rt.deploy(qa).unwrap();
        rt.deploy(qb).unwrap();
        assert_eq!(rt.lifecycle_stats().reuse_hits, 0);
        let instances_before = rt.multiquery().unwrap().num_instances();
        let report = rt.run();
        assert!(report.replacements > 0, "reuse must not silence plan replacement");
        let mq = rt.multiquery().unwrap();
        assert_eq!(mq.num_circuits(), rt.active_queries());
        assert_eq!(mq.total_subscriptions(), 0);
        // Replacements re-register under the same ids: no duplicate or
        // stale instances accumulate across swaps.
        assert_eq!(mq.num_instances(), instances_before);
    }

    /// The session API: a run can be advanced tick-by-tick with mid-run
    /// arrivals and departures, and matches `run()` when driven to the end
    /// with no interleaved workload.
    #[test]
    fn session_api_matches_run_and_supports_midrun_lifecycle() {
        let topo = small_world(32);
        let build = || {
            let mut rt = OverlayRuntime::new(
                &topo,
                32,
                RuntimeConfig { horizon_ms: 8_000.0, ..Default::default() },
            );
            rt.deploy(demo_query(&topo)).unwrap();
            rt
        };
        let whole = {
            let mut rt = build();
            rt.run()
        };
        let stepped = {
            let mut rt = build();
            let mut session = rt.start_run();
            while rt.advance_ticks(&mut session, 1) {}
            rt.finish_run(session)
        };
        assert_eq!(whole.samples.len(), stepped.samples.len());
        for (a, b) in whole.samples.iter().zip(&stepped.samples) {
            assert_eq!(a.network_usage.to_bits(), b.network_usage.to_bits());
            assert_eq!(a.active_queries, b.active_queries);
        }
        assert_eq!(whole.migrations, stepped.migrations);

        // Mid-run lifecycle: deploy at tick 3, undeploy at tick 6; the
        // active-query gauge tracks it in the samples.
        let mut rt = build();
        let mut session = rt.start_run();
        assert!(rt.advance_ticks(&mut session, 3));
        let h = rt.deploy(demo_query(&topo)).unwrap();
        assert!(rt.advance_ticks(&mut session, 3));
        assert!(rt.undeploy(h));
        while rt.advance_ticks(&mut session, 1) {}
        let report = rt.finish_run(session);
        assert_eq!(report.samples.len(), 8);
        assert_eq!(report.samples[2].active_queries, 1);
        assert_eq!(report.samples[4].active_queries, 2);
        assert_eq!(report.samples[7].active_queries, 1);
        assert_eq!(report.arrivals, 2);
        assert_eq!(report.departures, 1);
    }

    /// With the unified edge-granular jitter, both backends draw the same
    /// delta sequence from the run RNG and derive pairwise latencies from
    /// the same mutated graph — whole jittered runs must be bit-identical.
    #[test]
    fn jittered_run_is_bit_identical_across_backends() {
        let topo = small_world(40);
        let run = |backend| {
            let mut rt = OverlayRuntime::new(
                &topo,
                40,
                RuntimeConfig::builder()
                    .horizon_ms(8_000.0)
                    .churn(ChurnProcess::None)
                    .latency_backend(backend)
                    .latency_jitter(JitterModel {
                        edges_per_tick: 40,
                        factor_range: (0.8, 1.6),
                        band: (0.5, 3.0),
                    })
                    .build(),
            );
            rt.deploy(demo_query(&topo)).unwrap();
            rt.run()
        };
        let dense = run(LatencyBackend::Dense);
        let lazy = run(LatencyBackend::Lazy);
        assert_eq!(dense, lazy, "jittered runs must agree bit-for-bit across backends");
        let first = dense.samples[0].network_usage;
        assert!(
            dense.samples.iter().any(|s| s.network_usage != first),
            "jitter must actually move usage for the comparison to mean anything"
        );
    }

    /// The tentpole determinism contract: a run on an 8-thread pool is
    /// bit-identical to a serial run, across seeds, with every parallel
    /// stage active (row prewarm, scalar refresh, landmark placement wave,
    /// jitter-driven row repair).
    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let topo = small_world(41);
        let run = |seed: u64, threads: usize| {
            let mut rt = OverlayRuntime::new(
                &topo,
                seed,
                RuntimeConfig::builder()
                    .horizon_ms(10_000.0)
                    .threads(threads)
                    .latency_backend(LatencyBackend::Lazy)
                    .deployment(DeploymentModel::Wave { initial: 30, joins_per_tick: 10 })
                    .vivaldi(VivaldiConfig { landmarks: Some(8), ..Default::default() })
                    .churn(ChurnProcess::SparseWalk { nodes_per_tick: 12, std_dev: 0.15 })
                    .latency_jitter(JitterModel { edges_per_tick: 30, ..Default::default() })
                    .build(),
            );
            let hosts: Vec<NodeId> =
                topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
            let q = QuerySpec::join_star(
                &[hosts[0], hosts[1], hosts[2], hosts[3]],
                hosts[4],
                10.0,
                0.02,
            );
            rt.deploy(q).unwrap();
            let report = rt.run();
            (report, rt.lazy_latency_stats().unwrap(), rt.control_plane_stats())
        };
        for seed in [41u64, 97, 1234] {
            let (serial, serial_stats, serial_cp) = run(seed, 1);
            let (parallel, parallel_stats, parallel_cp) = run(seed, 8);
            assert_eq!(serial, parallel, "seed {seed}: thread count must not change the run");
            assert_eq!(serial_stats, parallel_stats, "seed {seed}: cache traffic must match");
            assert_eq!(
                (serial_cp.points_updated, serial_cp.nodes_joined, serial_cp.dirty_nodes),
                (parallel_cp.points_updated, parallel_cp.nodes_joined, parallel_cp.dirty_nodes),
                "seed {seed}: control-plane counters must match"
            );
        }
    }

    /// The builder is a pure constructor: a chained configuration and the
    /// equivalent struct literal run identically.
    #[test]
    fn builder_run_matches_struct_literal_run() {
        let topo = small_world(42);
        let built = RuntimeConfig::builder()
            .horizon_ms(6_000.0)
            .churn(ChurnProcess::SparseWalk { nodes_per_tick: 6, std_dev: 0.1 })
            .reopt_interval_ms(2_000.0)
            .full_reopt_interval_ms(None)
            .lazy_row_cache(16)
            .latency_backend(LatencyBackend::Lazy)
            .threads(1)
            .build();
        let literal = RuntimeConfig {
            horizon_ms: 6_000.0,
            churn: ChurnProcess::SparseWalk { nodes_per_tick: 6, std_dev: 0.1 },
            reopt_interval_ms: Some(2_000.0),
            full_reopt_interval_ms: None,
            lazy_row_cache: Some(16),
            latency_backend: LatencyBackend::Lazy,
            threads: 1,
            ..Default::default()
        };
        let run = |config: RuntimeConfig| {
            let mut rt = OverlayRuntime::new(&topo, 42, config);
            rt.deploy(demo_query(&topo)).unwrap();
            rt.run()
        };
        assert_eq!(run(built), run(literal));
    }

    /// Landmark mode under a deployment wave: construction computes only
    /// the k landmark rows (never one per node), joiners are placed the
    /// tick they arrive, and the whole run is deterministic.
    #[test]
    fn wave_with_landmarks_embeds_k_rows_and_places_joiners() {
        let topo = small_world(43);
        let n = topo.num_nodes();
        let build = || {
            OverlayRuntime::new(
                &topo,
                43,
                RuntimeConfig::builder()
                    .horizon_ms(10_000.0)
                    .latency_backend(LatencyBackend::Lazy)
                    .deployment(DeploymentModel::Wave { initial: 25, joins_per_tick: 10 })
                    .vivaldi(VivaldiConfig { landmarks: Some(8), ..Default::default() })
                    .build(),
            )
        };
        let rt = build();
        let stats = rt.lazy_latency_stats().unwrap();
        assert_eq!(
            stats.rows_computed, 8,
            "bring-up must touch exactly the landmark rows, not all {n}"
        );
        let run = || {
            let mut rt = build();
            let hosts: Vec<NodeId> =
                topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
            let q = QuerySpec::join_star(
                &[hosts[0], hosts[1], hosts[2], hosts[3]],
                hosts[4],
                10.0,
                0.02,
            );
            let handle = rt.deploy(q).unwrap();
            let report = rt.run();
            (report, rt.arrived_count(), rt.placement(handle).cloned())
        };
        let (a, arrived_a, placement_a) = run();
        let (b, arrived_b, placement_b) = run();
        assert_eq!(arrived_a, n, "the wave must complete");
        assert_eq!(arrived_a, arrived_b);
        assert_eq!(a, b, "landmark-mode wave runs must be deterministic");
        assert_eq!(placement_a, placement_b);
    }

    #[test]
    fn double_failure_is_idempotent() {
        let topo = small_world(9);
        let mut rt = OverlayRuntime::new(
            &topo,
            9,
            RuntimeConfig { horizon_ms: 5_000.0, churn: ChurnProcess::None, ..Default::default() },
        );
        rt.deploy(demo_query(&topo)).unwrap();
        let victim = topo.host_candidates()[70];
        rt.schedule_failure(1_000.0, victim);
        rt.schedule_failure(2_000.0, victim);
        rt.run();
        assert!(!rt.is_alive(victim));
    }

    fn routed_backend() -> MapperBackend {
        MapperBackend::Routed { bits: 12, scan_width: 8, proto: ProtoConfig::default() }
    }

    /// The routed backend answers every mapping from the same catalog state
    /// as the Dht backend, so whole runs — placements, samples, migrations —
    /// must be bit-identical; only the traffic accounting differs.
    #[test]
    fn routed_backend_run_is_bit_identical_to_dht_backend() {
        let topo = small_world(50);
        let run = |backend| {
            let mut rt = OverlayRuntime::new(
                &topo,
                50,
                RuntimeConfig::builder()
                    .horizon_ms(10_000.0)
                    .mapper_backend(backend)
                    .churn(ChurnProcess::SparseWalk { nodes_per_tick: 8, std_dev: 0.15 })
                    .latency_jitter(JitterModel { edges_per_tick: 25, ..Default::default() })
                    .reopt_interval_ms(2_000.0)
                    .build(),
            );
            let handle = rt.deploy(demo_query(&topo)).unwrap();
            let report = rt.run();
            let placement = rt.placement(handle).cloned();
            (report, placement, rt.control_plane_stats())
        };
        let (dht_report, dht_placement, dht_cp) =
            run(MapperBackend::Dht { bits: 12, scan_width: 8 });
        let (routed_report, routed_placement, routed_cp) = run(routed_backend());
        assert_eq!(dht_report, routed_report, "routed answers must match the omniscient-state Dht");
        assert_eq!(dht_placement, routed_placement);
        // The Dht backend experiences nothing; the routed backend replayed
        // every deploy/reopt lookup and churn refresh over the underlay.
        assert_eq!(dht_cp.routed_messages, 0);
        assert!(routed_cp.routed_messages > 0, "routed traffic must be charged");
        assert!(routed_cp.routed_lookups > 0);
        assert!(routed_cp.routed_p50_latency_ms.is_some());
        let p50 = routed_cp.routed_p50_latency_ms.unwrap();
        let p99 = routed_cp.routed_p99_latency_ms.unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "experienced latency must be positive: {p50} / {p99}");
        assert!(routed_cp.routed_hop_histogram.iter().sum::<u64>() > 0);
    }

    /// The routed protocol settles only on serial paths (tick boundary,
    /// failures, deploy), so its clock and stats — like the run itself —
    /// must not depend on the worker-pool width.
    #[test]
    fn routed_run_is_bit_identical_across_thread_counts() {
        let topo = small_world(51);
        let run = |threads: usize| {
            let mut rt = OverlayRuntime::new(
                &topo,
                51,
                RuntimeConfig::builder()
                    .horizon_ms(8_000.0)
                    .threads(threads)
                    .mapper_backend(routed_backend())
                    .churn(ChurnProcess::SparseWalk { nodes_per_tick: 10, std_dev: 0.15 })
                    .latency_jitter(JitterModel { edges_per_tick: 20, ..Default::default() })
                    .reopt_interval_ms(2_000.0)
                    .build(),
            );
            rt.deploy(demo_query(&topo)).unwrap();
            let report = rt.run();
            let routed = rt.routed_stats().cloned().unwrap();
            (report, rt.control_plane_stats(), routed)
        };
        let (serial, serial_cp, serial_routed) = run(1);
        let (parallel, parallel_cp, parallel_routed) = run(8);
        assert_eq!(serial, parallel, "thread count must not change a routed run");
        // ControlPlaneStats carries wall-clock timing fields; compare the
        // deterministic routed summary only.
        assert_eq!(
            (
                serial_cp.routed_messages,
                serial_cp.routed_lookups,
                serial_cp.routed_retries,
                serial_cp.routed_timeouts,
                &serial_cp.routed_hop_histogram,
                serial_cp.routed_p50_latency_ms,
                serial_cp.routed_p99_latency_ms,
            ),
            (
                parallel_cp.routed_messages,
                parallel_cp.routed_lookups,
                parallel_cp.routed_retries,
                parallel_cp.routed_timeouts,
                &parallel_cp.routed_hop_histogram,
                parallel_cp.routed_p50_latency_ms,
                parallel_cp.routed_p99_latency_ms,
            ),
            "routed control-plane summary must match across thread counts"
        );
        assert_eq!(serial_routed, parallel_routed, "full routed stats must match bit-for-bit");
        assert!(serial_routed.messages > 0);
    }

    /// A node failure under the routed backend re-maps the evacuated
    /// services through the live protocol and the catalog converges on
    /// surviving nodes only.
    #[test]
    fn routed_backend_survives_failures_and_reconverges() {
        let topo = small_world(52);
        let mut rt = OverlayRuntime::new(
            &topo,
            52,
            RuntimeConfig::builder()
                .horizon_ms(8_000.0)
                .mapper_backend(routed_backend())
                .churn(ChurnProcess::None)
                .build(),
        );
        assert_eq!(rt.mapper_name(), "routed-dht");
        let handles: Vec<_> =
            [demo_query(&topo)].into_iter().map(|q| rt.deploy(q).unwrap()).collect();
        let victim = topo.host_candidates()[60];
        rt.schedule_failure(3_000.0, victim);
        rt.run();
        assert!(!rt.is_alive(victim));
        for &h in &handles {
            if let Some(p) = rt.placement(h) {
                assert!(p.as_slice().iter().all(|&n| rt.is_alive(n)));
            }
        }
        let routed = rt.routed_stats().unwrap();
        assert!(routed.messages > 0, "failure evacuation must re-register over the wire");
        assert_eq!(routed.timeouts, 0, "an unpartitioned underlay never times out");
    }
}
