//! Underlay link-stress accounting.
//!
//! The fluid cost model charges a circuit link `rate × latency` without
//! saying *which physical links* carry the bytes. This module routes every
//! circuit link over the underlay's shortest path and accumulates the data
//! rate per physical edge — the "link stress" view used to find hot links
//! and to cross-validate the cost model: because shortest-path latency is
//! the sum of its edges' latencies, Σ (edge rate × edge latency) over the
//! underlay **exactly equals** the circuit's fluid network usage.
//!
//! Charging is **exactly invertible**: each edge keeps the multiset of
//! charged link rates (not a running float sum) and reports their total by
//! summing in sorted order, so [`LinkTraffic::discharge_circuit`] — which
//! routes over the same shortest paths and removes the same rates — leaves
//! every per-edge rate bit-identical to never having deployed. A running
//! `+=`/`-=` could not promise that: IEEE addition is not cancellative
//! (`(x + r) - r ≠ x` in general once circuits overlap on an edge).

use sbon_core::circuit::{Circuit, Placement};
use sbon_netsim::dijkstra::shortest_path;
use sbon_netsim::graph::NodeId;
use sbon_netsim::topology::Topology;

/// Data rate carried by each underlay edge (indexed like
/// [`sbon_netsim::graph::Graph::edges`]).
#[derive(Clone, Debug)]
pub struct LinkTraffic {
    /// Per-edge multiset of charged circuit-link rates, kept sorted
    /// (`total_cmp`) on insert. The edge's rate is their in-order sum, so
    /// it only depends on the multiset — not on the charge/discharge
    /// history that produced it.
    contributions: Vec<Vec<f64>>,
}

impl LinkTraffic {
    /// Zero traffic for a topology.
    pub fn zero(topology: &Topology) -> Self {
        LinkTraffic { contributions: vec![Vec::new(); topology.graph.num_edges()] }
    }

    /// Routes one placed circuit over the underlay, adding each circuit
    /// link's rate to every physical edge on its shortest path. Services
    /// co-located on one node add nothing.
    pub fn charge_circuit(
        &mut self,
        topology: &Topology,
        circuit: &Circuit,
        placement: &Placement,
    ) {
        self.route_circuit(topology, circuit, placement, true);
    }

    /// The exact inverse of [`LinkTraffic::charge_circuit`]: routes the
    /// circuit over the same shortest paths and removes the same rates from
    /// the same edges, leaving every per-edge rate **bit-identical** to
    /// never having deployed (module docs explain why a float subtraction
    /// could not). The underlay's latencies must not have changed in
    /// between — a changed shortest path would discharge an edge that was
    /// never charged, which panics.
    pub fn discharge_circuit(
        &mut self,
        topology: &Topology,
        circuit: &Circuit,
        placement: &Placement,
    ) {
        self.route_circuit(topology, circuit, placement, false);
    }

    /// Shared routing core of charge/discharge: one Dijkstra per circuit
    /// link, adding (or removing) the link's rate on every edge of the
    /// path.
    fn route_circuit(
        &mut self,
        topology: &Topology,
        circuit: &Circuit,
        placement: &Placement,
        charge: bool,
    ) {
        for l in circuit.links() {
            let from = placement.node_of(l.from);
            let to = placement.node_of(l.to);
            if from == to {
                continue;
            }
            let path = shortest_path(&topology.graph, from, to)
                .expect("placed circuits connect reachable nodes");
            for hop in path.windows(2) {
                let edge = edge_between(topology, hop[0], hop[1]).expect("path hops are adjacent");
                let rates = &mut self.contributions[edge];
                let pos = rates.partition_point(|r| r.total_cmp(&l.rate).is_lt());
                if charge {
                    rates.insert(pos, l.rate);
                } else {
                    assert!(
                        rates.get(pos).map(|r| r.to_bits()) == Some(l.rate.to_bits()),
                        "discharge must match a prior charge on every path edge"
                    );
                    rates.remove(pos);
                }
            }
        }
    }

    /// Rate on one edge: the sorted-order sum of its contributions (the
    /// list is maintained sorted, so this is a plain fold).
    pub fn rate_on(&self, edge_index: usize) -> f64 {
        self.contributions[edge_index].iter().sum()
    }

    /// The maximum per-edge rate (the hottest link).
    pub fn max_stress(&self) -> f64 {
        (0..self.contributions.len()).map(|e| self.rate_on(e)).fold(0.0, f64::max)
    }

    /// Indices and rates of the `k` hottest links, descending.
    pub fn top_hot_links(&self, k: usize) -> Vec<(usize, f64)> {
        let mut indexed: Vec<(usize, f64)> = (0..self.contributions.len())
            .map(|e| (e, self.rate_on(e)))
            .filter(|&(_, r)| r > 0.0)
            .collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        indexed.truncate(k);
        indexed
    }

    /// Σ over edges of `rate × edge latency` — must equal the sum of the
    /// charged circuits' fluid network usage (see module docs).
    pub fn total_usage(&self, topology: &Topology) -> f64 {
        topology.graph.edges().iter().enumerate().map(|(i, e)| self.rate_on(i) * e.latency_ms).sum()
    }

    /// Number of edges carrying any traffic.
    pub fn loaded_edges(&self) -> usize {
        (0..self.contributions.len()).filter(|&e| self.rate_on(e) > 0.0).count()
    }
}

/// Finds the index of the minimum-latency edge joining `a` and `b`.
fn edge_between(topology: &Topology, a: NodeId, b: NodeId) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, e) in topology.graph.edges().iter().enumerate() {
        let joins = (e.a == a && e.b == b) || (e.a == b && e.b == a);
        if joins && best.is_none_or(|(_, l)| e.latency_ms < l) {
            best = Some((i, e.latency_ms));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_coords::vivaldi::VivaldiConfig;
    use sbon_core::costspace::CostSpaceBuilder;
    use sbon_core::optimizer::{IntegratedOptimizer, OptimizerConfig, QuerySpec};
    use sbon_netsim::dijkstra::all_pairs_latency;
    use sbon_netsim::latency::LatencyProvider;
    use sbon_netsim::load::LoadModel;
    use sbon_netsim::rng::rng_from_seed;
    use sbon_netsim::topology::transit_stub::{generate, TransitStubConfig};

    fn placed(seed: u64) -> (Topology, Circuit, Placement, f64) {
        let topo = generate(&TransitStubConfig::with_total_nodes(100), seed);
        let latency = all_pairs_latency(&topo.graph);
        let embedding = VivaldiConfig::default().embed(&latency, seed);
        let mut rng = rng_from_seed(seed);
        let loads = LoadModel::Random { lo: 0.0, hi: 0.5 }.generate(topo.num_nodes(), &mut rng);
        let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
        let hosts = topo.host_candidates();
        let q = QuerySpec::join_star(&[hosts[0], hosts[25], hosts[50]], hosts[75], 10.0, 0.02);
        let p = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        let usage = p.circuit.cost_with(&p.placement, |a, b| latency.latency(a, b)).network_usage;
        (topo, p.circuit, p.placement, usage)
    }

    /// All per-edge rates, as bits (for exact comparisons).
    fn rate_bits(traffic: &LinkTraffic) -> Vec<u64> {
        (0..traffic.contributions.len()).map(|e| traffic.rate_on(e).to_bits()).collect()
    }

    #[test]
    fn underlay_usage_equals_fluid_usage() {
        for seed in [1u64, 2, 3] {
            let (topo, circuit, placement, fluid) = placed(seed);
            let mut traffic = LinkTraffic::zero(&topo);
            traffic.charge_circuit(&topo, &circuit, &placement);
            let underlay = traffic.total_usage(&topo);
            assert!(
                (underlay - fluid).abs() < 1e-6 * fluid.max(1.0),
                "seed {seed}: underlay {underlay} vs fluid {fluid}"
            );
        }
    }

    #[test]
    fn charging_twice_doubles_everything() {
        let (topo, circuit, placement, _) = placed(4);
        let mut once = LinkTraffic::zero(&topo);
        once.charge_circuit(&topo, &circuit, &placement);
        let mut twice = LinkTraffic::zero(&topo);
        twice.charge_circuit(&topo, &circuit, &placement);
        twice.charge_circuit(&topo, &circuit, &placement);
        assert!((twice.total_usage(&topo) - 2.0 * once.total_usage(&topo)).abs() < 1e-9);
        assert_eq!(twice.loaded_edges(), once.loaded_edges());
        assert!((twice.max_stress() - 2.0 * once.max_stress()).abs() < 1e-9);
    }

    #[test]
    fn hot_links_are_sorted_and_positive() {
        let (topo, circuit, placement, _) = placed(5);
        let mut traffic = LinkTraffic::zero(&topo);
        traffic.charge_circuit(&topo, &circuit, &placement);
        let hot = traffic.top_hot_links(5);
        assert!(!hot.is_empty());
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(hot[0].1, traffic.max_stress());
    }

    #[test]
    fn discharge_is_the_exact_inverse_of_charge() {
        let (topo, circuit, placement, _) = placed(7);
        let mut traffic = LinkTraffic::zero(&topo);
        let baseline = rate_bits(&traffic);
        traffic.charge_circuit(&topo, &circuit, &placement);
        assert!(traffic.loaded_edges() > 0);
        traffic.discharge_circuit(&topo, &circuit, &placement);
        assert_eq!(
            rate_bits(&traffic),
            baseline,
            "discharge must leave rates bit-identical to baseline"
        );
        // With another circuit in the background: charge A, charge B,
        // discharge B — bit-identical to the A-only state even where the
        // two circuits' paths overlap on an edge.
        // B was optimized on its own equally-sized world, so its placement
        // indexes are valid here; only the routing matters for this test.
        let (_, b_circuit, b_placement, _) = placed(8);
        traffic.charge_circuit(&topo, &circuit, &placement);
        let a_only = rate_bits(&traffic);
        traffic.charge_circuit(&topo, &b_circuit, &b_placement);
        traffic.discharge_circuit(&topo, &b_circuit, &b_placement);
        assert_eq!(rate_bits(&traffic), a_only);
    }

    #[test]
    #[should_panic(expected = "discharge must match a prior charge")]
    fn discharging_an_uncharged_circuit_panics() {
        let (topo, circuit, placement, _) = placed(9);
        let mut traffic = LinkTraffic::zero(&topo);
        traffic.discharge_circuit(&topo, &circuit, &placement);
    }

    #[test]
    fn zero_traffic_reports_nothing() {
        let (topo, _, _, _) = placed(6);
        let traffic = LinkTraffic::zero(&topo);
        assert_eq!(traffic.loaded_edges(), 0);
        assert_eq!(traffic.max_stress(), 0.0);
        assert!(traffic.top_hot_links(3).is_empty());
        assert_eq!(traffic.total_usage(&topo), 0.0);
    }
}
