//! Bit-invisibility pins for the observability layer.
//!
//! The contract (`sbon_obs` crate docs): metrics, span tracing, and the
//! flight recorder may *watch* the control plane but never *steer* it. An
//! instrumented run — keep-everything tracing, flight recorder armed — must
//! produce the bit-identical [`RunReport`] to an uninstrumented run of the
//! same scenario, across every latency backend × mapper backend pair, and
//! the thread count must show up in neither the report nor the trace.
//!
//! These properties draw random scenarios (topology, churn, jitter,
//! failures, reuse) like `reopt_equivalence.rs` and pin:
//!
//! 1. obs-on ≡ obs-off on the full report (the instrumented run must also
//!    actually emit events, so the pin cannot pass vacuously);
//! 2. with obs on, `threads = 8` ≡ `threads = 1`, on the report *and* on
//!    the emitted-event count;
//! 3. the JSONL trace bytes are identical across thread counts.

use proptest::prelude::*;
use sbon_core::multiquery::ReuseScope;
use sbon_core::optimizer::QuerySpec;
use sbon_dht::ProtoConfig;
use sbon_netsim::graph::NodeId;
use sbon_netsim::load::ChurnProcess;
use sbon_netsim::topology::transit_stub::{generate, TransitStubConfig};
use sbon_netsim::topology::Topology;
use sbon_obs::{ObsConfig, TraceSpec};
use sbon_overlay::{
    JitterModel, LatencyBackend, MapperBackend, OverlayRuntime, RunReport, RuntimeConfig,
};

/// One randomly drawn run scenario (see `reopt_equivalence.rs`).
#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    nodes: usize,
    /// Selects (latency backend, mapper backend) out of the 2×3 grid.
    backend: u8,
    sparse_churn: bool,
    jitter: bool,
    failure: bool,
    reuse: bool,
}

impl Scenario {
    fn decode(seed: u64, nodes: usize, backend: u8, flags: u8) -> Scenario {
        Scenario {
            seed,
            nodes,
            backend,
            sparse_churn: flags & 1 != 0,
            jitter: flags & 2 != 0,
            failure: flags & 4 != 0,
            reuse: flags & 8 != 0,
        }
    }

    fn backends(&self) -> (LatencyBackend, MapperBackend) {
        let mapper = match self.backend % 3 {
            0 => MapperBackend::Dht { bits: 12, scan_width: 8 },
            1 => MapperBackend::Oracle,
            _ => MapperBackend::Routed { bits: 12, scan_width: 8, proto: ProtoConfig::default() },
        };
        let latency = if self.backend < 3 { LatencyBackend::Dense } else { LatencyBackend::Lazy };
        (latency, mapper)
    }
}

fn topology(s: &Scenario) -> Topology {
    generate(&TransitStubConfig::with_total_nodes(s.nodes), s.seed)
}

fn star(hosts: &[NodeId], base: usize, rate: f64) -> QuerySpec {
    let pick = |i: usize| hosts[(base + i * 7) % hosts.len()];
    QuerySpec::join_star(&[pick(0), pick(1), pick(2), pick(3)], pick(4), rate, 0.02)
}

/// Runs the drawn scenario once under the given observability config,
/// returning the report and how many trace events were emitted (None when
/// tracing is off). All three re-opt pass kinds fire within the horizon,
/// and the optional failure lands mid-run — so deploy, tick, re-opt, fail,
/// and routed-settle instrumentation sites all execute.
fn run_once(
    s: &Scenario,
    topo: &Topology,
    threads: usize,
    obs: ObsConfig,
) -> (RunReport, Option<u64>) {
    let (latency, mapper) = s.backends();
    let churn = if s.sparse_churn {
        ChurnProcess::SparseWalk { nodes_per_tick: 2, std_dev: 0.08 }
    } else {
        ChurnProcess::Step { p: 0.02 }
    };
    let jitter = s.jitter.then_some(JitterModel {
        edges_per_tick: 10,
        factor_range: (0.8, 1.6),
        band: (0.5, 3.0),
    });
    let reuse = if s.reuse { ReuseScope::All } else { ReuseScope::None };

    let config = RuntimeConfig::builder()
        .horizon_ms(8_000.0)
        .reopt_interval_ms(2_000.0)
        .rewrite_interval_ms(3_000.0)
        .full_reopt_interval_ms(4_000.0)
        .churn(churn)
        .latency_jitter(jitter)
        .latency_backend(latency)
        .mapper_backend(mapper)
        .reuse(reuse)
        .threads(threads)
        .obs(obs)
        .build();

    let mut rt = OverlayRuntime::new(topo, s.seed, config);
    let hosts = topo.host_candidates();
    rt.deploy(star(&hosts, 0, 10.0)).expect("first query must deploy");
    rt.deploy(star(&hosts, 3, 6.0)).expect("second query must deploy");
    if s.failure {
        rt.schedule_failure(3_500.0, hosts[7 % hosts.len()]);
    }
    let report = rt.run();
    let emitted = rt.trace_events_emitted();
    (report, emitted)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// Keep-everything instrumentation is invisible: the instrumented run's
    /// report is bit-identical to the uninstrumented run's.
    #[test]
    fn instrumented_run_is_bit_identical_to_uninstrumented(
        (seed, nodes, backend, flags) in (0u64..u64::MAX, 60usize..140, 0u8..6, 0u8..16)
    ) {
        let s = Scenario::decode(seed, nodes, backend, flags);
        let topo = topology(&s);
        let (plain, no_trace) = run_once(&s, &topo, 1, ObsConfig::disabled());
        let (watched, emitted) = run_once(&s, &topo, 1, ObsConfig::full_null(seed));
        prop_assert!(no_trace.is_none(), "disabled obs must not build a tracer");
        prop_assert!(
            emitted.expect("tracer on") > 0,
            "the instrumented run must emit events, or this pin is vacuous"
        );
        prop_assert_eq!(plain, watched);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// With instrumentation on, the worker-pool width must show up neither
    /// in the report nor in the number of emitted trace events (spans come
    /// only from serial orchestration paths).
    #[test]
    fn traced_run_is_thread_count_invariant(
        (seed, nodes, backend, flags) in (0u64..u64::MAX, 60usize..140, 0u8..6, 0u8..16)
    ) {
        let s = Scenario::decode(seed, nodes, backend, flags);
        let topo = topology(&s);
        let (parallel, emitted_p) = run_once(&s, &topo, 8, ObsConfig::full_null(seed));
        let (serial, emitted_s) = run_once(&s, &topo, 1, ObsConfig::full_null(seed));
        prop_assert_eq!(parallel, serial);
        prop_assert_eq!(emitted_p, emitted_s);
    }
}

/// The JSONL trace itself is deterministic across thread counts:
/// byte-identical files from a `threads = 8` and a `threads = 1` run.
#[test]
fn jsonl_trace_bytes_are_identical_across_thread_counts() {
    let s = Scenario {
        seed: 0x000b_171d,
        nodes: 90,
        backend: 5, // Lazy × Routed: the most instrumentation sites
        sparse_churn: true,
        jitter: true,
        failure: true,
        reuse: true,
    };
    let topo = topology(&s);
    let dir = std::env::temp_dir();
    let path = |threads: usize| {
        dir.join(format!("sbon_obs_invisibility_{}_{threads}.jsonl", std::process::id()))
    };
    let mut reports = Vec::new();
    for threads in [8usize, 1] {
        let obs =
            ObsConfig { trace: Some(TraceSpec::jsonl(s.seed, path(threads))), flight_capacity: 64 };
        // `run_once` drops the runtime on return, which flushes the sink.
        reports.push(run_once(&s, &topo, threads, obs));
    }
    assert_eq!(reports[0], reports[1], "traced runs stay thread-count invariant");
    let a = std::fs::read(path(8)).expect("parallel trace written");
    let b = std::fs::read(path(1)).expect("serial trace written");
    assert!(!a.is_empty(), "the trace must not be empty");
    assert_eq!(a, b, "JSONL trace bytes must not depend on the thread count");
    for threads in [8usize, 1] {
        let _ = std::fs::remove_file(path(threads));
    }
}
