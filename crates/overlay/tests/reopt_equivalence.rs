//! Property pins for dirty-driven incremental re-optimization.
//!
//! The relevance index ([`sbon_core::reopt::relevance`]) lets the runtime
//! skip re-optimization passes for circuits it can prove clean. The skip is
//! only legal if it is **exact**: on the full [`RunReport`] — every sample,
//! every migration, every usage figure — a run with skipping enabled must be
//! bit-identical to one that evaluates every circuit at every pass. These
//! properties pin that contract across random topologies, churn and jitter
//! schedules, both latency backends, both mapper backends, reuse on/off, and
//! mid-run node failures.
//!
//! A second pin holds the sharded read-only evaluation phase to the serial
//! one: `threads = 8` ≡ `threads = 1`, again on the whole report.

use proptest::prelude::*;
use sbon_core::multiquery::ReuseScope;
use sbon_core::optimizer::QuerySpec;
use sbon_netsim::graph::NodeId;
use sbon_netsim::load::ChurnProcess;
use sbon_netsim::topology::transit_stub::{generate, TransitStubConfig};
use sbon_netsim::topology::Topology;
use sbon_overlay::{
    JitterModel, LatencyBackend, MapperBackend, OverlayRuntime, RunReport, RuntimeConfig,
};

/// One randomly drawn run scenario. Everything that shapes the simulation is
/// in here so both runs of a comparison replay the identical schedule.
#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    nodes: usize,
    /// Selects (latency backend, mapper backend) out of the 2×2 grid.
    backend: u8,
    sparse_churn: bool,
    jitter: bool,
    failure: bool,
    reuse: bool,
}

impl Scenario {
    /// Decodes a strategy draw: `flags` carries the four booleans as bits so
    /// the whole scenario fits the shim's tuple-strategy arity.
    fn decode(seed: u64, nodes: usize, backend: u8, flags: u8) -> Scenario {
        Scenario {
            seed,
            nodes,
            backend,
            sparse_churn: flags & 1 != 0,
            jitter: flags & 2 != 0,
            failure: flags & 4 != 0,
            reuse: flags & 8 != 0,
        }
    }
}

fn topology(s: &Scenario) -> Topology {
    generate(&TransitStubConfig::with_total_nodes(s.nodes), s.seed)
}

/// A small join star over the stub hosts, offset so the two deployed queries
/// overlap on some hosts (exercising reuse pins) without being identical.
fn star(hosts: &[NodeId], base: usize, rate: f64) -> QuerySpec {
    let pick = |i: usize| hosts[(base + i * 7) % hosts.len()];
    QuerySpec::join_star(&[pick(0), pick(1), pick(2), pick(3)], pick(4), rate, 0.02)
}

/// Runs the drawn scenario once. `incremental` toggles relevance-index
/// skipping; `threads` sets the worker pool for the parallel phases. All
/// three re-optimization pass kinds fire within the 8-tick horizon
/// (intervals 2 s / 3 s / 4 s), and the optional failure lands between the
/// first and second local pass.
fn run_once(s: &Scenario, topo: &Topology, incremental: bool, threads: usize) -> RunReport {
    let (latency, mapper) = match s.backend {
        0 => (LatencyBackend::Dense, MapperBackend::Dht { bits: 12, scan_width: 8 }),
        1 => (LatencyBackend::Dense, MapperBackend::Oracle),
        2 => (LatencyBackend::Lazy, MapperBackend::Dht { bits: 12, scan_width: 8 }),
        _ => (LatencyBackend::Lazy, MapperBackend::Oracle),
    };
    // Kept light on purpose: heavy churn dirties every circuit every tick
    // and the skip path never fires. At ~2 touched nodes per tick a good
    // fraction of passes find provably-clean circuits (up to ~half of the
    // candidacies in probe runs), so the equivalence below actually
    // compares skipped work against evaluated work.
    let churn = if s.sparse_churn {
        ChurnProcess::SparseWalk { nodes_per_tick: 2, std_dev: 0.08 }
    } else {
        ChurnProcess::Step { p: 0.02 }
    };
    let jitter = s.jitter.then_some(JitterModel {
        edges_per_tick: 10,
        factor_range: (0.8, 1.6),
        band: (0.5, 3.0),
    });
    let reuse = if s.reuse { ReuseScope::All } else { ReuseScope::None };

    let config = RuntimeConfig::builder()
        .horizon_ms(8_000.0)
        .reopt_interval_ms(2_000.0)
        .rewrite_interval_ms(3_000.0)
        .full_reopt_interval_ms(4_000.0)
        .churn(churn)
        .latency_jitter(jitter)
        .latency_backend(latency)
        .mapper_backend(mapper)
        .reuse(reuse)
        .threads(threads)
        .incremental_reopt(incremental)
        .build();

    let mut rt = OverlayRuntime::new(topo, s.seed, config);
    let hosts = topo.host_candidates();
    rt.deploy(star(&hosts, 0, 10.0)).expect("first query must deploy");
    rt.deploy(star(&hosts, 3, 6.0)).expect("second query must deploy");
    if s.failure {
        // Kill a producer host of the first query mid-run: evacuation (or
        // teardown, if it strands the circuit) must stay equivalent too.
        rt.schedule_failure(3_500.0, hosts[7 % hosts.len()]);
    }
    rt.run()
}

proptest! {
    // Runtime runs are the expensive end of the workspace's property tests,
    // so the case counts stay small; the draws still cover the full backend
    // grid and the churn/jitter/failure/reuse combinations.
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Dirty-driven skipping is exact: skipping provably-clean circuits
    /// produces the bit-identical `RunReport` to evaluating everything.
    #[test]
    fn incremental_reopt_equals_full_scan(
        (seed, nodes, backend, flags) in (0u64..u64::MAX, 60usize..140, 0u8..4, 0u8..16)
    ) {
        let s = Scenario::decode(seed, nodes, backend, flags);
        let topo = topology(&s);
        let incremental = run_once(&s, &topo, true, 1);
        let full_scan = run_once(&s, &topo, false, 1);
        prop_assert_eq!(incremental, full_scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// The sharded read-only evaluation phase commits serially in circuit
    /// order, so the thread count must never show up in the report.
    #[test]
    fn parallel_reopt_equals_serial(
        (seed, nodes, backend, flags) in (0u64..u64::MAX, 60usize..140, 0u8..4, 0u8..16)
    ) {
        let s = Scenario::decode(seed, nodes, backend, flags);
        let topo = topology(&s);
        let parallel = run_once(&s, &topo, true, 8);
        let serial = run_once(&s, &topo, true, 1);
        prop_assert_eq!(parallel, serial);
    }
}
