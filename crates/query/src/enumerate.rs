//! Plan enumeration.
//!
//! "Many distributed optimizers use dynamic programming with pruning or some
//! other enumeration algorithm to perform plan selection" (Section 2.1).
//! Three entry points:
//!
//! * [`all_join_trees`] — exhaustive bushy enumeration (each unordered tree
//!   once). Tree counts are the double factorials (2n−3)!!: 1, 3, 15, 105,
//!   945 for n = 2..6, so this is for small queries and for tests that need
//!   ground truth.
//! * [`dp_best_plan`] — Selinger-style bushy DP over subsets minimizing the
//!   statistical cost; this is the classic two-step optimizer's plan step.
//! * [`dp_top_k_plans`] — k-best generalization of the DP. The integrated
//!   optimizer uses it as its *candidate plan set*: "a set of candidate
//!   plans is created ... each plan is virtually placed and physically
//!   mapped" (Section 3.3).

use crate::plan::LogicalPlan;
use crate::stats::StatsCatalog;
use crate::stream::StreamId;

/// All distinct bushy join trees over `streams` (commutative mirrors are
/// generated once). Panics above 8 streams — use the DP there.
pub fn all_join_trees(streams: &[StreamId]) -> Vec<LogicalPlan> {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(
        streams.len() <= 8,
        "exhaustive enumeration beyond 8 streams is intractable; use dp_top_k_plans"
    );
    build_trees(streams)
}

fn build_trees(set: &[StreamId]) -> Vec<LogicalPlan> {
    if set.len() == 1 {
        return vec![LogicalPlan::source(set[0])];
    }
    let mut out = Vec::new();
    // Enumerate unordered partitions (L, R): fix the first element in L to
    // avoid producing both (L,R) and (R,L).
    let n = set.len();
    for mask in 0..(1u32 << (n - 1)) {
        // mask selects which of set[1..] join set[0] on the left side.
        let mut left = vec![set[0]];
        let mut right = Vec::new();
        for (i, &s) in set[1..].iter().enumerate() {
            if mask & (1 << i) != 0 {
                left.push(s);
            } else {
                right.push(s);
            }
        }
        if right.is_empty() {
            continue; // not a proper partition
        }
        for l in build_trees(&left) {
            for r in build_trees(&right) {
                out.push(LogicalPlan::join(l.clone(), r));
            }
        }
    }
    out
}

/// All *left-deep* join trees over `streams`: every permutation where the
/// right input of each join is a base stream (the classic System R /
/// Selinger search space — `n!/2` trees after removing the mirrored first
/// pair instead of the bushy `(2n−3)!!`). Panics above 8 streams.
pub fn all_left_deep_trees(streams: &[StreamId]) -> Vec<LogicalPlan> {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(streams.len() <= 8, "left-deep enumeration beyond 8 streams is intractable");
    if streams.len() == 1 {
        return vec![LogicalPlan::source(streams[0])];
    }
    let mut out = Vec::new();
    let mut perm: Vec<StreamId> = streams.to_vec();
    permute_left_deep(&mut perm, 0, &mut out);
    out
}

fn permute_left_deep(perm: &mut Vec<StreamId>, k: usize, out: &mut Vec<LogicalPlan>) {
    let n = perm.len();
    if k == n {
        // Skip mirrored duplicates: require the first pair ordered.
        if perm[0] <= perm[1] {
            let mut plan =
                LogicalPlan::join(LogicalPlan::source(perm[0]), LogicalPlan::source(perm[1]));
            for &s in &perm[2..] {
                plan = LogicalPlan::join(plan, LogicalPlan::source(s));
            }
            out.push(plan);
        }
        return;
    }
    for i in k..n {
        perm.swap(k, i);
        permute_left_deep(perm, k + 1, out);
        perm.swap(k, i);
    }
}

/// The statistically cheapest bushy plan and its cost, via subset DP.
/// Supports up to 20 streams.
pub fn dp_best_plan(stats: &StatsCatalog, streams: &[StreamId]) -> (LogicalPlan, f64) {
    let mut best = dp_top_k_plans(stats, streams, 1);
    best.pop().expect("k=1 DP always returns a plan")
}

/// The `k` statistically cheapest bushy plans (ascending cost).
///
/// Classic k-best DP: each subset keeps its `k` cheapest subplans; a
/// subset's candidates combine the k-lists of every split. The result is the
/// full set's k-list. `k = 1` degenerates to Selinger DP. Panics on more
/// than 20 streams or `k == 0`.
pub fn dp_top_k_plans(
    stats: &StatsCatalog,
    streams: &[StreamId],
    k: usize,
) -> Vec<(LogicalPlan, f64)> {
    assert!(k >= 1, "k must be at least 1");
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(streams.len() <= 20, "DP beyond 20 streams would exhaust memory");
    let n = streams.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // dp[mask] = up to k of (plan, statistical cost, output rate), cost-sorted.
    let mut dp: Vec<Vec<(LogicalPlan, f64, f64)>> = vec![Vec::new(); (full as usize) + 1];
    for (i, &s) in streams.iter().enumerate() {
        dp[1usize << i] = vec![(LogicalPlan::source(s), 0.0, stats.rate(s))];
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue; // singletons were seeded above
        }
        let mut candidates: Vec<(LogicalPlan, f64, f64)> = Vec::new();
        // Enumerate proper submask splits; anchor the lowest set bit on the
        // left to visit each unordered split once.
        let low_bit = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & low_bit != 0 {
                let other = mask & !sub;
                if other != 0 && !dp[sub as usize].is_empty() && !dp[other as usize].is_empty() {
                    let cross = cross_selectivity_masks(stats, streams, sub, other);
                    for (lp, lc, lr) in &dp[sub as usize] {
                        for (rp, rc, rr) in &dp[other as usize] {
                            let out_rate = cross * lr * rr * stats.window_factor();
                            let cost = lc + rc + out_rate;
                            candidates.push((
                                LogicalPlan::join(lp.clone(), rp.clone()),
                                cost,
                                out_rate,
                            ));
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
        candidates.truncate(k);
        dp[mask as usize] = candidates;
    }

    dp[full as usize].iter().map(|(p, c, _)| (p.clone(), *c)).collect()
}

fn cross_selectivity_masks(
    stats: &StatsCatalog,
    streams: &[StreamId],
    left: u32,
    right: u32,
) -> f64 {
    let members = |m: u32| -> Vec<StreamId> {
        (0..streams.len()).filter(|i| m & (1u32 << i) != 0).map(|i| streams[i]).collect()
    };
    stats.cross_selectivity(&members(left), &members(right))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams(n: u32) -> Vec<StreamId> {
        (0..n).map(StreamId).collect()
    }

    fn uniform_stats(n: u32, rate: f64, sel: f64) -> StatsCatalog {
        let mut c = StatsCatalog::new(sel);
        for i in 0..n {
            c.set_rate(StreamId(i), rate);
        }
        c
    }

    #[test]
    fn tree_counts_match_double_factorial() {
        assert_eq!(all_join_trees(&streams(1)).len(), 1);
        assert_eq!(all_join_trees(&streams(2)).len(), 1);
        assert_eq!(all_join_trees(&streams(3)).len(), 3);
        assert_eq!(all_join_trees(&streams(4)).len(), 15);
        assert_eq!(all_join_trees(&streams(5)).len(), 105);
    }

    #[test]
    fn trees_are_structurally_distinct() {
        let trees = all_join_trees(&streams(4));
        let mut keys: Vec<String> = trees.iter().map(|t| t.shape_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15, "every enumerated tree must be unique");
    }

    #[test]
    fn every_tree_covers_all_sources() {
        for t in all_join_trees(&streams(4)) {
            let mut srcs = t.sources();
            srcs.sort();
            assert_eq!(srcs, streams(4));
        }
    }

    #[test]
    fn dp_matches_exhaustive_minimum() {
        let mut stats = uniform_stats(5, 10.0, 0.05);
        // Skew selectivities so order matters.
        stats.set_join_selectivity(StreamId(0), StreamId(1), 0.001);
        stats.set_join_selectivity(StreamId(2), StreamId(3), 0.9);
        stats.set_join_selectivity(StreamId(1), StreamId(4), 0.3);
        let ids = streams(5);
        let exhaustive_best = all_join_trees(&ids)
            .into_iter()
            .map(|t| {
                let c = stats.statistical_cost(&t);
                (t, c)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let (dp_plan, dp_cost) = dp_best_plan(&stats, &ids);
        assert!(
            (dp_cost - exhaustive_best.1).abs() < 1e-9 * exhaustive_best.1.max(1.0),
            "dp={dp_cost} exhaustive={}",
            exhaustive_best.1
        );
        // And the DP's reported cost must agree with the tree-walking model.
        assert!((stats.statistical_cost(&dp_plan) - dp_cost).abs() < 1e-9 * dp_cost.max(1.0));
    }

    #[test]
    fn top_k_is_sorted_and_contains_best() {
        let stats = uniform_stats(4, 10.0, 0.1);
        let ids = streams(4);
        let top = dp_top_k_plans(&stats, &ids, 5);
        assert!(top.len() >= 2);
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let (_, best_cost) = dp_best_plan(&stats, &ids);
        assert!((top[0].1 - best_cost).abs() < 1e-12);
    }

    #[test]
    fn top_k_costs_agree_with_tree_walk() {
        let mut stats = uniform_stats(4, 8.0, 0.2);
        stats.set_join_selectivity(StreamId(0), StreamId(3), 0.01);
        for (plan, cost) in dp_top_k_plans(&stats, &streams(4), 8) {
            let walked = stats.statistical_cost(&plan);
            assert!((walked - cost).abs() < 1e-9 * walked.max(1.0), "{plan}");
        }
    }

    #[test]
    fn left_deep_counts_are_half_factorials() {
        // n!/2 for n ≥ 2: 1, 3, 12, 60.
        assert_eq!(all_left_deep_trees(&streams(2)).len(), 1);
        assert_eq!(all_left_deep_trees(&streams(3)).len(), 3);
        assert_eq!(all_left_deep_trees(&streams(4)).len(), 12);
        assert_eq!(all_left_deep_trees(&streams(5)).len(), 60);
    }

    #[test]
    fn left_deep_trees_are_left_deep_and_distinct() {
        let trees = all_left_deep_trees(&streams(4));
        let mut keys: Vec<String> = trees.iter().map(|t| t.shape_key()).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "no duplicate shapes");
        for t in &trees {
            // Left-deep: depth == number of streams.
            assert_eq!(t.depth(), 4, "{t}");
            let mut srcs = t.sources();
            srcs.sort();
            assert_eq!(srcs, streams(4));
        }
    }

    #[test]
    fn left_deep_is_a_subset_of_bushy() {
        // sbon-lint: allow(unordered-iteration): membership probes only
        // (`contains`), never iterated.
        let bushy: std::collections::HashSet<String> =
            all_join_trees(&streams(4)).iter().map(|t| t.shape_key()).collect();
        for t in all_left_deep_trees(&streams(4)) {
            assert!(bushy.contains(&t.shape_key()), "{t}");
        }
    }

    #[test]
    fn best_left_deep_never_beats_best_bushy() {
        let mut stats = uniform_stats(5, 10.0, 0.05);
        stats.set_join_selectivity(StreamId(0), StreamId(1), 0.001);
        stats.set_join_selectivity(StreamId(2), StreamId(3), 0.7);
        let ids = streams(5);
        let best_left = all_left_deep_trees(&ids)
            .iter()
            .map(|t| stats.statistical_cost(t))
            .fold(f64::INFINITY, f64::min);
        let (_, best_bushy) = dp_best_plan(&stats, &ids);
        assert!(best_bushy <= best_left + 1e-9);
    }

    #[test]
    fn top_k_plans_are_structurally_distinct() {
        let stats = uniform_stats(5, 10.0, 0.1);
        let top = dp_top_k_plans(&stats, &streams(5), 10);
        let mut keys: Vec<String> = top.iter().map(|(p, _)| p.shape_key()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "k-best must not repeat a shape");
    }

    #[test]
    fn top_k_with_k_one_equals_best_plan() {
        let mut stats = uniform_stats(4, 10.0, 0.1);
        stats.set_join_selectivity(StreamId(0), StreamId(2), 0.003);
        let ids = streams(4);
        let top = dp_top_k_plans(&stats, &ids, 1);
        let (best, cost) = dp_best_plan(&stats, &ids);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0.shape_key(), best.shape_key());
        assert!((top[0].1 - cost).abs() < 1e-12);
    }

    #[test]
    fn single_stream_plan_is_source() {
        let stats = uniform_stats(1, 5.0, 0.1);
        let (p, c) = dp_best_plan(&stats, &streams(1));
        assert_eq!(p, LogicalPlan::source(StreamId(0)));
        assert_eq!(c, 0.0);
    }

    #[test]
    fn window_affects_dp_cost() {
        let mut stats = uniform_stats(3, 10.0, 0.1);
        let ids = streams(3);
        let (_, c1) = dp_best_plan(&stats, &ids);
        stats.set_window(2.0);
        let (_, c2) = dp_best_plan(&stats, &ids);
        assert!(c2 > c1);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn exhaustive_rejects_large_n() {
        all_join_trees(&streams(9));
    }
}
