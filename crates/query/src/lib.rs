//! Continuous-query model: streams, operators, logical plans, statistics,
//! and plan enumeration.
//!
//! This crate is deliberately network-agnostic — it knows about data rates
//! and selectivities, not about nodes or latencies. The classic two-step
//! optimizer uses *only* this crate's statistics to rank plans; the paper's
//! integrated optimizer (in `sbon-core`) re-ranks the same candidate plans
//! by their placed-circuit cost.
//!
//! * [`stream`] — source streams with publication rates and pinned
//!   producers.
//! * [`plan`] — logical plan trees (sources, unary and binary operators).
//! * [`stats`] — the statistics catalog: base rates and pairwise join
//!   selectivities; rate propagation through a plan; the statistics-only
//!   plan cost used by the two-step baseline.
//! * [`rewrite`] — local plan rewriting (reorder / decompose / re-compose
//!   services) used by re-optimization (paper §3.3).
//! * [`enumerate`] — exhaustive bushy join-tree enumeration for small
//!   queries and Selinger-style dynamic programming (with a k-best
//!   generalization) for larger ones.

#![forbid(unsafe_code)]

pub mod enumerate;
pub mod plan;
pub mod rewrite;
pub mod stats;
pub mod stream;

pub use enumerate::{all_join_trees, all_left_deep_trees, dp_best_plan, dp_top_k_plans};
pub use plan::{BinaryOp, LogicalPlan, UnaryOp};
pub use rewrite::{commute, fuse_filters, neighbors, rotate_left, rotate_right, split_filter};
pub use stats::StatsCatalog;
pub use stream::{StreamCatalog, StreamDef, StreamId};
