//! Logical plans.
//!
//! "Plan generation takes as input a user query and outputs a logical plan
//! ... one or more data endpoints, possibly connected via services, to a
//! consumer" (Section 2.1). A [`LogicalPlan`] is the operator tree between
//! the producers (leaves) and the consumer (the root's output).

use crate::stream::StreamId;

/// Unary operator kinds (services with one input).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnaryOp {
    /// SELECT-style filter passing the given fraction of input data.
    Select {
        /// Fraction of input data passed through, `(0, 1]`.
        selectivity: f64,
    },
    /// Projection / compression reducing data volume by the given ratio.
    Project {
        /// Output-to-input data ratio, `(0, 1]`.
        ratio: f64,
    },
    /// Windowed aggregation emitting summaries.
    Aggregate {
        /// Output-to-input data ratio, `(0, 1]`.
        ratio: f64,
    },
}

impl UnaryOp {
    /// The output-to-input rate ratio of this operator.
    pub fn rate_ratio(self) -> f64 {
        match self {
            UnaryOp::Select { selectivity } => selectivity,
            UnaryOp::Project { ratio } | UnaryOp::Aggregate { ratio } => ratio,
        }
    }

    /// Short label for plan rendering.
    fn label(self) -> &'static str {
        match self {
            UnaryOp::Select { .. } => "σ",
            UnaryOp::Project { .. } => "π",
            UnaryOp::Aggregate { .. } => "γ",
        }
    }
}

/// Binary operator kinds (services with two inputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// Windowed two-way join; its selectivity comes from the statistics
    /// catalog (it depends on *which* streams meet here, not on the node).
    Join,
    /// Stream union (merge).
    Union,
}

impl BinaryOp {
    fn label(self) -> &'static str {
        match self {
            BinaryOp::Join => "⋈",
            BinaryOp::Union => "∪",
        }
    }
}

/// A logical plan tree.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// A leaf: one source stream.
    Source(StreamId),
    /// A unary service over a subplan.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The input subplan.
        input: Box<LogicalPlan>,
    },
    /// A binary service over two subplans.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Leaf constructor.
    pub fn source(id: StreamId) -> Self {
        LogicalPlan::Source(id)
    }

    /// Join of two subplans.
    pub fn join(left: LogicalPlan, right: LogicalPlan) -> Self {
        LogicalPlan::Binary { op: BinaryOp::Join, left: Box::new(left), right: Box::new(right) }
    }

    /// Union of two subplans.
    pub fn union(left: LogicalPlan, right: LogicalPlan) -> Self {
        LogicalPlan::Binary { op: BinaryOp::Union, left: Box::new(left), right: Box::new(right) }
    }

    /// Filter over a subplan.
    pub fn select(selectivity: f64, input: LogicalPlan) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "filter selectivity must be in (0, 1], got {selectivity}"
        );
        LogicalPlan::Unary { op: UnaryOp::Select { selectivity }, input: Box::new(input) }
    }

    /// Aggregation over a subplan.
    pub fn aggregate(ratio: f64, input: LogicalPlan) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "aggregate ratio must be in (0, 1]");
        LogicalPlan::Unary { op: UnaryOp::Aggregate { ratio }, input: Box::new(input) }
    }

    /// The set of source streams referenced, in first-visit order.
    pub fn sources(&self) -> Vec<StreamId> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::Source(id) = p {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        });
        out
    }

    /// Number of operator (non-leaf) nodes — the services a circuit must
    /// place.
    pub fn num_services(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if !matches!(p, LogicalPlan::Source(_)) {
                n += 1;
            }
        });
        n
    }

    /// Depth of the tree (a single source has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            LogicalPlan::Source(_) => 1,
            LogicalPlan::Unary { input, .. } => 1 + input.depth(),
            LogicalPlan::Binary { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Source(_) => {}
            LogicalPlan::Unary { input, .. } => input.visit(f),
            LogicalPlan::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// A canonical, order-sensitive rendering, e.g. `((s0 ⋈ s1) ⋈ s2)`.
    /// Used as a structural identity in tests and logs.
    pub fn render(&self) -> String {
        match self {
            LogicalPlan::Source(id) => id.to_string(),
            LogicalPlan::Unary { op, input } => format!("{}({})", op.label(), input.render()),
            LogicalPlan::Binary { op, left, right } => {
                format!("({} {} {})", left.render(), op.label(), right.render())
            }
        }
    }

    /// A *shape* key that ignores left/right order of commutative joins, so
    /// `A ⋈ B` and `B ⋈ A` compare equal. Used to dedup enumeration output.
    pub fn shape_key(&self) -> String {
        match self {
            LogicalPlan::Source(id) => id.to_string(),
            LogicalPlan::Unary { op, input } => format!("{}({})", op.label(), input.shape_key()),
            LogicalPlan::Binary { op, left, right } => {
                let (a, b) = (left.shape_key(), right.shape_key());
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                format!("({a} {} {b})", op.label())
            }
        }
    }
}

impl std::fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> LogicalPlan {
        LogicalPlan::source(StreamId(i))
    }

    #[test]
    fn sources_in_visit_order_without_duplicates() {
        let p = LogicalPlan::join(LogicalPlan::join(s(2), s(0)), s(2));
        assert_eq!(p.sources(), vec![StreamId(2), StreamId(0)]);
    }

    #[test]
    fn num_services_counts_operators_only() {
        let p = LogicalPlan::select(0.5, LogicalPlan::join(s(0), s(1)));
        assert_eq!(p.num_services(), 2);
        assert_eq!(s(0).num_services(), 0);
    }

    #[test]
    fn depth_of_left_deep_vs_bushy() {
        let left_deep =
            LogicalPlan::join(LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2)), s(3));
        let bushy = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), LogicalPlan::join(s(2), s(3)));
        assert_eq!(left_deep.depth(), 4);
        assert_eq!(bushy.depth(), 3);
    }

    #[test]
    fn render_is_structural() {
        let p = LogicalPlan::join(s(0), s(1));
        assert_eq!(p.render(), "(s0 ⋈ s1)");
        let q = LogicalPlan::select(0.1, s(2));
        assert_eq!(q.render(), "σ(s2)");
    }

    #[test]
    fn shape_key_ignores_join_order() {
        let ab = LogicalPlan::join(s(0), s(1));
        let ba = LogicalPlan::join(s(1), s(0));
        assert_eq!(ab.shape_key(), ba.shape_key());
        assert_ne!(ab.render(), ba.render());
    }

    #[test]
    fn shape_key_distinguishes_association() {
        let l = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        let r = LogicalPlan::join(s(0), LogicalPlan::join(s(1), s(2)));
        assert_ne!(l.shape_key(), r.shape_key());
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn select_rejects_bad_selectivity() {
        LogicalPlan::select(0.0, s(0));
    }

    #[test]
    fn rate_ratio_accessors() {
        assert_eq!(UnaryOp::Select { selectivity: 0.3 }.rate_ratio(), 0.3);
        assert_eq!(UnaryOp::Aggregate { ratio: 0.1 }.rate_ratio(), 0.1);
    }
}
