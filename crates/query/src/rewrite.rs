//! Local plan rewriting.
//!
//! Section 3.3: "As part of re-optimization, a node can perform limited plan
//! re-writing as long as it is running all affected services. This could
//! involve the reordering of services, the decomposition of existing
//! services into sub-services to reduce load, or the re-composition of
//! services to reduce network communication."
//!
//! This module provides exactly those three rewrite families on
//! [`LogicalPlan`]s:
//!
//! * **Reordering** — join commutation and the two associativity rotations,
//!   applied at any node ([`neighbors`] enumerates every one-step rewrite).
//! * **Decomposition** — [`split_filter`] splits a σ into two half-strength
//!   σs (two cheaper services that can run on two nodes).
//! * **Re-composition** — [`fuse_filters`] merges adjacent σs into one
//!   service (one network link instead of two).
//!
//! All rewrites preserve the plan's final output rate (the cost model's
//! invariant currency); only the *intermediate* shape changes.

use crate::plan::{BinaryOp, LogicalPlan, UnaryOp};

/// Swaps the two inputs of a commutative binary root. Returns `None` for
/// other shapes.
pub fn commute(plan: &LogicalPlan) -> Option<LogicalPlan> {
    match plan {
        LogicalPlan::Binary { op: op @ (BinaryOp::Join | BinaryOp::Union), left, right } => {
            Some(LogicalPlan::Binary { op: *op, left: right.clone(), right: left.clone() })
        }
        _ => None,
    }
}

/// Left rotation at the root: `A ⋈ (B ⋈ C)` → `(A ⋈ B) ⋈ C`.
/// Only joins associate; returns `None` otherwise.
pub fn rotate_left(plan: &LogicalPlan) -> Option<LogicalPlan> {
    if let LogicalPlan::Binary { op: BinaryOp::Join, left: a, right } = plan {
        if let LogicalPlan::Binary { op: BinaryOp::Join, left: b, right: c } = right.as_ref() {
            return Some(LogicalPlan::join(
                LogicalPlan::join(a.as_ref().clone(), b.as_ref().clone()),
                c.as_ref().clone(),
            ));
        }
    }
    None
}

/// Right rotation at the root: `(A ⋈ B) ⋈ C` → `A ⋈ (B ⋈ C)`.
pub fn rotate_right(plan: &LogicalPlan) -> Option<LogicalPlan> {
    if let LogicalPlan::Binary { op: BinaryOp::Join, left, right: c } = plan {
        if let LogicalPlan::Binary { op: BinaryOp::Join, left: a, right: b } = left.as_ref() {
            return Some(LogicalPlan::join(
                a.as_ref().clone(),
                LogicalPlan::join(b.as_ref().clone(), c.as_ref().clone()),
            ));
        }
    }
    None
}

/// Fuses two adjacent filters at the root: `σ_a(σ_b(P))` → `σ_{a·b}(P)`.
pub fn fuse_filters(plan: &LogicalPlan) -> Option<LogicalPlan> {
    if let LogicalPlan::Unary { op: UnaryOp::Select { selectivity: a }, input } = plan {
        if let LogicalPlan::Unary { op: UnaryOp::Select { selectivity: b }, input: inner } =
            input.as_ref()
        {
            return Some(LogicalPlan::select(
                (a * b).clamp(f64::MIN_POSITIVE, 1.0),
                inner.as_ref().clone(),
            ));
        }
    }
    None
}

/// Splits a filter at the root into two half-strength stages:
/// `σ_s(P)` → `σ_√s(σ_√s(P))`. No-op (`None`) for `s = 1`.
pub fn split_filter(plan: &LogicalPlan) -> Option<LogicalPlan> {
    if let LogicalPlan::Unary { op: UnaryOp::Select { selectivity: s }, input } = plan {
        if *s < 1.0 {
            let half = s.sqrt();
            return Some(LogicalPlan::select(
                half,
                LogicalPlan::select(half, input.as_ref().clone()),
            ));
        }
    }
    None
}

/// Every plan reachable from `plan` by applying exactly one rewrite at one
/// node (any depth), deduplicated by exact rendering (left/right order
/// matters: a commuted join is a *different* circuit even though its shape
/// key is equal, and composite rewrites like commute-then-rotate need the
/// intermediate to be reachable).
pub fn neighbors(plan: &LogicalPlan) -> Vec<LogicalPlan> {
    let mut out = Vec::new();
    rewrite_everywhere(plan, &mut out);
    // sbon-lint: allow(unordered-iteration): membership-only dedup; the
    // output order comes from `out` (a Vec), never from the set.
    let mut seen = std::collections::HashSet::new();
    seen.insert(plan.render());
    out.retain(|p| seen.insert(p.render()));
    out
}

/// Every plan within `depth` rewrite steps of `plan` (excluding `plan`
/// itself), BFS over rendered plans, capped at `max_plans` results. Depth 2
/// matters in practice: commutations are cost-neutral on their own but open
/// up rotations that one-step search cannot reach.
pub fn neighbors_within(plan: &LogicalPlan, depth: usize, max_plans: usize) -> Vec<LogicalPlan> {
    // sbon-lint: allow(unordered-iteration): membership-only BFS visited
    // set; result order comes from the Vec frontier.
    let mut seen = std::collections::HashSet::new();
    seen.insert(plan.render());
    let mut out: Vec<LogicalPlan> = Vec::new();
    let mut frontier = vec![plan.clone()];
    for _ in 0..depth {
        let mut next = Vec::new();
        for p in &frontier {
            for n in neighbors(p) {
                if out.len() >= max_plans {
                    return out;
                }
                if seen.insert(n.render()) {
                    out.push(n.clone());
                    next.push(n);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

/// Applies every root rewrite at every position of the tree, collecting the
/// full plans that result.
fn rewrite_everywhere(plan: &LogicalPlan, out: &mut Vec<LogicalPlan>) {
    // Rewrites at this node.
    for rw in [commute, rotate_left, rotate_right, fuse_filters, split_filter] {
        if let Some(p) = rw(plan) {
            out.push(p);
        }
    }
    // Rewrites in children, re-wrapped into this node.
    match plan {
        LogicalPlan::Source(_) => {}
        LogicalPlan::Unary { op, input } => {
            let mut inner = Vec::new();
            rewrite_everywhere(input, &mut inner);
            for p in inner {
                out.push(LogicalPlan::Unary { op: *op, input: Box::new(p) });
            }
        }
        LogicalPlan::Binary { op, left, right } => {
            let mut ls = Vec::new();
            rewrite_everywhere(left, &mut ls);
            for p in ls {
                out.push(LogicalPlan::Binary { op: *op, left: Box::new(p), right: right.clone() });
            }
            let mut rs = Vec::new();
            rewrite_everywhere(right, &mut rs);
            for p in rs {
                out.push(LogicalPlan::Binary { op: *op, left: left.clone(), right: Box::new(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsCatalog;
    use crate::stream::StreamId;

    fn s(i: u32) -> LogicalPlan {
        LogicalPlan::source(StreamId(i))
    }

    fn stats(n: u32) -> StatsCatalog {
        let mut c = StatsCatalog::new(0.1);
        for i in 0..n {
            c.set_rate(StreamId(i), 10.0);
        }
        c
    }

    #[test]
    fn commute_swaps_join_inputs() {
        let p = LogicalPlan::join(s(0), s(1));
        let q = commute(&p).unwrap();
        assert_eq!(q.render(), "(s1 ⋈ s0)");
        assert!(commute(&s(0)).is_none());
    }

    #[test]
    fn rotations_are_inverse() {
        let p = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        let rotated = rotate_right(&p).unwrap();
        assert_eq!(rotated.render(), "(s0 ⋈ (s1 ⋈ s2))");
        let back = rotate_left(&rotated).unwrap();
        assert_eq!(back.render(), p.render());
    }

    #[test]
    fn rotations_preserve_output_rate() {
        let c = stats(3);
        let p = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        let r = rotate_right(&p).unwrap();
        let (a, b) = (c.output_rate(&p), c.output_rate(&r));
        assert!((a - b).abs() < 1e-9 * a);
    }

    #[test]
    fn fuse_preserves_output_rate() {
        let c = stats(1);
        let p = LogicalPlan::select(0.5, LogicalPlan::select(0.4, s(0)));
        let fused = fuse_filters(&p).unwrap();
        assert_eq!(fused.render(), "σ(s0)");
        assert!((c.output_rate(&p) - c.output_rate(&fused)).abs() < 1e-12);
        assert_eq!(fused.num_services(), 1);
    }

    #[test]
    fn split_preserves_output_rate_and_adds_a_service() {
        let c = stats(1);
        let p = LogicalPlan::select(0.25, s(0));
        let split = split_filter(&p).unwrap();
        assert_eq!(split.num_services(), 2);
        assert!((c.output_rate(&p) - c.output_rate(&split)).abs() < 1e-12);
        // Round trip: fusing the split gives the original selectivity back.
        let fused = fuse_filters(&split).unwrap();
        assert!((c.output_rate(&fused) - c.output_rate(&p)).abs() < 1e-12);
    }

    #[test]
    fn split_of_unit_filter_is_none() {
        assert!(split_filter(&LogicalPlan::select(1.0, s(0))).is_none());
    }

    #[test]
    fn neighbors_cover_join_reorderings() {
        let p = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        let ns = neighbors(&p);
        let keys: Vec<String> = ns.iter().map(|n| n.shape_key()).collect();
        // One-step rewrites must reach the other two association classes.
        let assoc1 = LogicalPlan::join(s(0), LogicalPlan::join(s(1), s(2))).shape_key();
        assert!(keys.contains(&assoc1), "{keys:?}");
        // Every neighbor joins the same source set.
        for n in &ns {
            let mut srcs = n.sources();
            srcs.sort();
            assert_eq!(srcs, vec![StreamId(0), StreamId(1), StreamId(2)]);
        }
    }

    #[test]
    fn neighbors_of_two_way_join_is_the_commutation() {
        let p = LogicalPlan::join(s(0), s(1));
        let ns = neighbors(&p);
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].render(), "(s1 ⋈ s0)");
    }

    #[test]
    fn neighbors_preserve_output_rate() {
        let c = stats(4);
        let p = LogicalPlan::join(
            LogicalPlan::join(s(0), s(1)),
            LogicalPlan::select(0.5, LogicalPlan::select(0.5, s(2))),
        );
        let base = c.output_rate(&p);
        for n in neighbors(&p) {
            let r = c.output_rate(&n);
            assert!((r - base).abs() < 1e-9 * base.max(1.0), "{n}");
        }
    }

    #[test]
    fn repeated_neighbor_expansion_reaches_all_three_way_orders() {
        // BFS over the rewrite graph from one 3-way plan must reach all 3
        // association classes (shape keys), walking rendered plans.
        let start = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        // sbon-lint: allow(unordered-iteration): membership + final counts
        // only; neither set is iterated.
        let mut rendered = std::collections::HashSet::new();
        // sbon-lint: allow(unordered-iteration): as above.
        let mut shapes = std::collections::HashSet::new();
        let mut frontier = vec![start];
        while let Some(p) = frontier.pop() {
            if rendered.insert(p.render()) {
                shapes.insert(p.shape_key());
                frontier.extend(neighbors(&p));
            }
        }
        assert_eq!(shapes.len(), 3, "{shapes:?}");
        // 3 shapes × 4 renderings each (2 commutations per join level).
        assert_eq!(rendered.len(), 12, "{rendered:?}");
    }
}
