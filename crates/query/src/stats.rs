//! The statistics catalog and rate propagation.
//!
//! "Table summary information is used to estimate costs for performing
//! different service orderings" (Section 2.1). For streams the summary is a
//! publication *rate* per source plus pairwise join selectivities; an
//! operator's output rate follows the standard windowed stream-join model:
//!
//! * `rate(σ/π/γ (P))      = ratio · rate(P)`
//! * `rate(P₁ ⋈ P₂)        = sel(S₁, S₂) · rate(P₁) · rate(P₂) · window`
//! * `rate(P₁ ∪ P₂)        = rate(P₁) + rate(P₂)`
//!
//! where `sel(S₁, S₂) = Π sel(i, j)` over stream pairs across the two sides
//! (attribute-independence assumption). A useful consequence: the *final*
//! output rate of a join set is independent of join order, while the
//! *intermediate* rates — and hence the statistical plan cost
//! `Σ operator output rates` — depend on it. That asymmetry is exactly what
//! gives the classic two-step optimizer something to optimize.

use std::collections::HashMap;

use crate::plan::{BinaryOp, LogicalPlan};
use crate::stream::{StreamCatalog, StreamId};

/// Rates and selectivities for a deployment. Mutable: "the selectivity
/// estimates used to favor one plan over another may change as a circuit
/// matures" (Section 3.3), and re-optimization reacts to such updates.
#[derive(Clone, Debug)]
pub struct StatsCatalog {
    // sbon-lint: allow(unordered-iteration): point lookups only (insert/get
    // by stream id); neither map is ever iterated.
    rates: HashMap<StreamId, f64>,
    // sbon-lint: allow(unordered-iteration): point lookups only, see above.
    join_sel: HashMap<(StreamId, StreamId), f64>,
    default_join_sel: f64,
    window: f64,
}

impl StatsCatalog {
    /// An empty catalog with the given default pairwise join selectivity.
    pub fn new(default_join_sel: f64) -> Self {
        assert!(
            default_join_sel > 0.0 && default_join_sel.is_finite(),
            "default selectivity must be positive"
        );
        StatsCatalog {
            // sbon-lint: allow(unordered-iteration): lookup-only maps, see
            // the field declarations.
            rates: HashMap::new(),
            // sbon-lint: allow(unordered-iteration): as above.
            join_sel: HashMap::new(),
            default_join_sel,
            window: 1.0,
        }
    }

    /// Seeds rates from a stream catalog.
    pub fn from_streams(streams: &StreamCatalog, default_join_sel: f64) -> Self {
        let mut cat = StatsCatalog::new(default_join_sel);
        for s in streams.iter() {
            cat.set_rate(s.id, s.rate);
        }
        cat
    }

    /// Sets the join window factor (seconds of stream state joined against).
    pub fn set_window(&mut self, window: f64) {
        assert!(window > 0.0 && window.is_finite());
        self.window = window;
    }

    /// The current join window factor.
    pub fn window_factor(&self) -> f64 {
        self.window
    }

    /// Sets one stream's base rate.
    pub fn set_rate(&mut self, id: StreamId, rate: f64) {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        self.rates.insert(id, rate);
    }

    /// Base rate of a stream. Panics if the stream is unknown — the
    /// optimizer must never cost a plan over unregistered sources.
    pub fn rate(&self, id: StreamId) -> f64 {
        *self.rates.get(&id).unwrap_or_else(|| panic!("no rate registered for {id}"))
    }

    /// Sets the pairwise selectivity between two streams (symmetric).
    pub fn set_join_selectivity(&mut self, a: StreamId, b: StreamId, sel: f64) {
        assert!(sel > 0.0 && sel.is_finite(), "selectivity must be positive");
        let key = if a <= b { (a, b) } else { (b, a) };
        self.join_sel.insert(key, sel);
    }

    /// Pairwise selectivity (falls back to the default).
    pub fn join_selectivity(&self, a: StreamId, b: StreamId) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        *self.join_sel.get(&key).unwrap_or(&self.default_join_sel)
    }

    /// Cross selectivity of joining two stream sets: product over pairs.
    pub fn cross_selectivity(&self, left: &[StreamId], right: &[StreamId]) -> f64 {
        let mut sel = 1.0;
        for &i in left {
            for &j in right {
                sel *= self.join_selectivity(i, j);
            }
        }
        sel
    }

    /// Output rate of a plan node (the rate flowing over its output link).
    pub fn output_rate(&self, plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Source(id) => self.rate(*id),
            LogicalPlan::Unary { op, input } => op.rate_ratio() * self.output_rate(input),
            LogicalPlan::Binary { op, left, right } => {
                let rl = self.output_rate(left);
                let rr = self.output_rate(right);
                match op {
                    BinaryOp::Join => {
                        self.cross_selectivity(&left.sources(), &right.sources())
                            * rl
                            * rr
                            * self.window
                    }
                    BinaryOp::Union => rl + rr,
                }
            }
        }
    }

    /// The statistics-only plan cost used by the classic two-step optimizer:
    /// the sum of all operator output rates ("C_out"). Lower is better.
    pub fn statistical_cost(&self, plan: &LogicalPlan) -> f64 {
        let mut cost = 0.0;
        plan.visit(&mut |p| {
            if !matches!(p, LogicalPlan::Source(_)) {
                cost += self.output_rate(p);
            }
        });
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_netsim::graph::NodeId;

    fn s(i: u32) -> LogicalPlan {
        LogicalPlan::source(StreamId(i))
    }

    fn catalog3() -> StatsCatalog {
        let mut c = StatsCatalog::new(0.1);
        c.set_rate(StreamId(0), 10.0);
        c.set_rate(StreamId(1), 20.0);
        c.set_rate(StreamId(2), 5.0);
        c
    }

    #[test]
    fn source_rate_is_base_rate() {
        let c = catalog3();
        assert_eq!(c.output_rate(&s(1)), 20.0);
    }

    #[test]
    fn join_rate_model() {
        let c = catalog3();
        // 0.1 × 10 × 20 × window(1.0) = 20
        assert_eq!(c.output_rate(&LogicalPlan::join(s(0), s(1))), 20.0);
    }

    #[test]
    fn filter_scales_rate() {
        let c = catalog3();
        let p = LogicalPlan::select(0.25, s(1));
        assert_eq!(c.output_rate(&p), 5.0);
    }

    #[test]
    fn union_adds_rates() {
        let c = catalog3();
        assert_eq!(c.output_rate(&LogicalPlan::union(s(0), s(2))), 15.0);
    }

    #[test]
    fn final_join_rate_is_order_independent() {
        let mut c = catalog3();
        c.set_join_selectivity(StreamId(0), StreamId(1), 0.5);
        c.set_join_selectivity(StreamId(1), StreamId(2), 0.01);
        let p1 = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        let p2 = LogicalPlan::join(s(0), LogicalPlan::join(s(1), s(2)));
        let p3 = LogicalPlan::join(LogicalPlan::join(s(0), s(2)), s(1));
        let r = c.output_rate(&p1);
        assert!((c.output_rate(&p2) - r).abs() < 1e-9 * r);
        assert!((c.output_rate(&p3) - r).abs() < 1e-9 * r);
    }

    #[test]
    fn statistical_cost_depends_on_order() {
        let mut c = catalog3();
        // Joining 1⋈2 first is cheap (sel 0.001), 0⋈1 first is expensive.
        c.set_join_selectivity(StreamId(1), StreamId(2), 0.001);
        c.set_join_selectivity(StreamId(0), StreamId(1), 0.9);
        let cheap_first = LogicalPlan::join(LogicalPlan::join(s(1), s(2)), s(0));
        let costly_first = LogicalPlan::join(LogicalPlan::join(s(0), s(1)), s(2));
        assert!(c.statistical_cost(&cheap_first) < c.statistical_cost(&costly_first));
    }

    #[test]
    fn window_scales_join_output() {
        let mut c = catalog3();
        let p = LogicalPlan::join(s(0), s(1));
        let base = c.output_rate(&p);
        c.set_window(2.0);
        assert_eq!(c.output_rate(&p), 2.0 * base);
    }

    #[test]
    fn selectivity_is_symmetric() {
        let mut c = catalog3();
        c.set_join_selectivity(StreamId(2), StreamId(0), 0.33);
        assert_eq!(c.join_selectivity(StreamId(0), StreamId(2)), 0.33);
        assert_eq!(c.join_selectivity(StreamId(2), StreamId(0)), 0.33);
    }

    #[test]
    fn from_streams_copies_rates() {
        let mut sc = StreamCatalog::new();
        let a = sc.register("a", 7.0, NodeId(0));
        let c = StatsCatalog::from_streams(&sc, 0.1);
        assert_eq!(c.rate(a), 7.0);
    }

    #[test]
    #[should_panic(expected = "no rate registered")]
    fn unknown_stream_panics() {
        StatsCatalog::new(0.1).rate(StreamId(9));
    }
}
