//! Source streams.
//!
//! An SBON "often relays real-time data from a particular data source ...
//! and no other source can provide this particular data" (Section 2 — "one
//! cannot move mountains"). A [`StreamDef`] therefore carries a *pinned*
//! producer node along with its publication rate; there is no data-placement
//! problem.

use sbon_netsim::graph::NodeId;

/// Identifier of a source stream, dense per [`StreamCatalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The id as a usize, for table indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Definition of one source stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamDef {
    /// The stream's id in its catalog.
    pub id: StreamId,
    /// Human-readable name for harness output.
    pub name: String,
    /// Publication rate in normalized data units per second.
    pub rate: f64,
    /// The physical node where the producer lives (pinned).
    pub producer: NodeId,
}

/// The set of streams known to a deployment.
#[derive(Clone, Debug, Default)]
pub struct StreamCatalog {
    streams: Vec<StreamDef>,
}

impl StreamCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        StreamCatalog::default()
    }

    /// Registers a stream and returns its id. Panics on non-finite or
    /// negative rate.
    pub fn register(&mut self, name: impl Into<String>, rate: f64, producer: NodeId) -> StreamId {
        assert!(rate.is_finite() && rate > 0.0, "stream rate must be positive, got {rate}");
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(StreamDef { id, name: name.into(), rate, producer });
        id
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no stream is registered.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Looks up one stream.
    pub fn get(&self, id: StreamId) -> &StreamDef {
        &self.streams[id.index()]
    }

    /// All streams, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamDef> {
        self.streams.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_ids() {
        let mut c = StreamCatalog::new();
        let a = c.register("temps", 10.0, NodeId(3));
        let b = c.register("quakes", 2.5, NodeId(7));
        assert_eq!((a, b), (StreamId(0), StreamId(1)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(b).rate, 2.5);
        assert_eq!(c.get(a).producer, NodeId(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        StreamCatalog::new().register("bad", 0.0, NodeId(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(StreamId(4).to_string(), "s4");
    }
}
