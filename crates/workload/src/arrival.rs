//! Query arrival processes.
//!
//! Each process defines an instantaneous arrival *rate* over simulated
//! time; per tick the scenario driver samples a Poisson count with mean
//! equal to the rate integrated over the tick. All integrals are closed
//! form, so the expected arrival count is exact — no time-step bias — and
//! every draw comes from the caller's RNG (determinism by seed).

use rand::Rng;

/// How queries arrive over time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrivals per simulated second.
        rate_per_sec: f64,
    },
    /// A constant base rate with a burst window — the "everyone tunes in at
    /// once" shape (breaking news, market open).
    FlashCrowd {
        /// Rate outside the burst (arrivals per simulated second).
        base_per_sec: f64,
        /// Rate inside `[start_ms, end_ms)`.
        peak_per_sec: f64,
        /// Burst window start (simulated ms).
        start_ms: f64,
        /// Burst window end (simulated ms).
        end_ms: f64,
    },
    /// A sinusoidal day/night rate curve:
    /// `mean × (1 + amplitude·sin(2π·t/period))`, floored at zero.
    Diurnal {
        /// Mean arrivals per simulated second.
        mean_per_sec: f64,
        /// Relative swing in `[0, 1]`: 0 is flat, 1 swings between 0 and
        /// 2× the mean.
        amplitude: f64,
        /// Period of one "day" in simulated ms.
        period_ms: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at `t_ms`, in arrivals per second.
    pub fn rate_at(&self, t_ms: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::FlashCrowd { base_per_sec, peak_per_sec, start_ms, end_ms } => {
                if t_ms >= start_ms && t_ms < end_ms {
                    peak_per_sec
                } else {
                    base_per_sec
                }
            }
            ArrivalProcess::Diurnal { mean_per_sec, amplitude, period_ms } => {
                let phase = std::f64::consts::TAU * t_ms / period_ms;
                (mean_per_sec * (1.0 + amplitude * phase.sin())).max(0.0)
            }
        }
    }

    /// Expected arrivals in `[t_ms, t_ms + dt_ms)` — the rate integrated in
    /// closed form over the window.
    pub fn expected_in(&self, t_ms: f64, dt_ms: f64) -> f64 {
        debug_assert!(dt_ms >= 0.0);
        let dt_s = dt_ms / 1_000.0;
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec * dt_s,
            ArrivalProcess::FlashCrowd { base_per_sec, peak_per_sec, start_ms, end_ms } => {
                let hi = t_ms + dt_ms;
                let burst_ms = (hi.min(end_ms) - t_ms.max(start_ms)).max(0.0);
                (base_per_sec * (dt_ms - burst_ms) + peak_per_sec * burst_ms) / 1_000.0
            }
            ArrivalProcess::Diurnal { mean_per_sec, amplitude, period_ms } => {
                // ∫ mean(1 + A sin(2πt/T)) dt = mean·dt − mean·A·T/2π·Δcos.
                // (Exact for amplitude ≤ 1, where the rate never clips at 0;
                // larger amplitudes are rejected by the scenario driver.)
                let w = std::f64::consts::TAU / period_ms;
                let d_cos = ((t_ms + dt_ms) * w).cos() - (t_ms * w).cos();
                (mean_per_sec * dt_ms - mean_per_sec * amplitude * d_cos / w) / 1_000.0
            }
        }
    }

    /// Samples the arrival count for `[t_ms, t_ms + dt_ms)`: a Poisson draw
    /// with the exact expected count as its mean.
    pub fn sample_arrivals<R: Rng + ?Sized>(&self, t_ms: f64, dt_ms: f64, rng: &mut R) -> usize {
        sample_poisson(rng, self.expected_in(t_ms, dt_ms))
    }
}

/// Samples `Poisson(mean)` via Knuth's product method, splitting large
/// means into chunks (Poisson is additive) so `exp(-mean)` never
/// underflows.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    debug_assert!(mean >= 0.0 && mean.is_finite(), "Poisson mean must be finite, got {mean}");
    const CHUNK: f64 = 32.0;
    let mut remaining = mean;
    let mut total = 0usize;
    while remaining > 0.0 {
        let m = remaining.min(CHUNK);
        remaining -= m;
        let limit = (-m).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        while product > limit {
            total += 1;
            product *= rng.gen_range(0.0..1.0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_netsim::rng::rng_from_seed;

    #[test]
    fn poisson_sampler_matches_mean() {
        let mut rng = rng_from_seed(1);
        for mean in [0.3, 2.0, 7.5, 120.0] {
            let n = 20_000;
            let total: usize = (0..n).map(|_| sample_poisson(&mut rng, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() < 0.05 * mean.max(1.0),
                "mean {mean}: empirical {empirical}"
            );
        }
    }

    #[test]
    fn zero_mean_yields_zero_arrivals() {
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn flash_crowd_integral_covers_partial_overlap() {
        let p = ArrivalProcess::FlashCrowd {
            base_per_sec: 1.0,
            peak_per_sec: 11.0,
            start_ms: 1_500.0,
            end_ms: 2_500.0,
        };
        // Window [1000, 2000): 500 ms at base + 500 ms at peak.
        let expect = (1.0 * 500.0 + 11.0 * 500.0) / 1_000.0;
        assert!((p.expected_in(1_000.0, 1_000.0) - expect).abs() < 1e-12);
        // Disjoint window: base only.
        assert!((p.expected_in(3_000.0, 1_000.0) - 1.0).abs() < 1e-12);
        assert_eq!(p.rate_at(2_000.0), 11.0);
        assert_eq!(p.rate_at(2_500.0), 1.0);
    }

    #[test]
    fn diurnal_integral_matches_numeric_quadrature() {
        let p = ArrivalProcess::Diurnal { mean_per_sec: 4.0, amplitude: 0.8, period_ms: 60_000.0 };
        let (t0, dt) = (7_000.0, 13_000.0);
        let steps = 100_000;
        let h = dt / steps as f64;
        let numeric: f64 =
            (0..steps).map(|i| p.rate_at(t0 + (i as f64 + 0.5) * h) * h / 1_000.0).sum();
        let closed = p.expected_in(t0, dt);
        assert!((numeric - closed).abs() < 1e-6 * closed, "{numeric} vs {closed}");
        // One full period integrates to exactly mean·period.
        let full = p.expected_in(0.0, 60_000.0);
        assert!((full - 4.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_deterministic_by_seed() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 3.0 };
        let draw = || {
            let mut rng = rng_from_seed(9);
            (0..50).map(|i| p.sample_arrivals(i as f64 * 1_000.0, 1_000.0, &mut rng)).sum::<usize>()
        };
        assert_eq!(draw(), draw());
    }
}
