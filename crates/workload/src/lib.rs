//! # sbon_workload — workload generation and scenario-driven runs
//!
//! The cost-space optimizer exists to serve a *stream of queries* arriving
//! at and departing from a shared overlay (§3.4 of the paper treats
//! multi-query reuse as the steady state, not the exception). This crate
//! turns that into an executable workload model on top of the
//! `sbon_overlay` runtime's query-lifecycle API (`deploy` / `undeploy` /
//! `advance_ticks`):
//!
//! * [`arrival::ArrivalProcess`] — when queries arrive: memoryless
//!   [`Poisson`](arrival::ArrivalProcess::Poisson), bursty
//!   [`FlashCrowd`](arrival::ArrivalProcess::FlashCrowd), and sinusoidal
//!   [`Diurnal`](arrival::ArrivalProcess::Diurnal) rate curves, each with a
//!   closed-form per-tick integral feeding an exact Poisson draw.
//! * [`session::SessionDuration`] — how long they stay: exponential,
//!   heavy-tailed bounded-Pareto, or fixed.
//! * [`templates::QueryGenerator`] — what they ask for: a weighted mix of
//!   [`templates::QueryTemplate`]s (popular-feed joins, fan-in
//!   aggregations, chain filters) over a shared
//!   [`StreamCatalog`](sbon_query::stream::StreamCatalog), with Zipf-skewed
//!   feed popularity so tenants overlap and multi-query reuse pays.
//! * [`scenario::Scenario`] — the declarative composition: overlay size +
//!   [`RuntimeConfig`](sbon_overlay::RuntimeConfig) (deployment wave,
//!   churn, jitter, reuse scope) + catalog + workload, driven end-to-end
//!   into a [`scenario::ScenarioReport`] with arrival/departure totals,
//!   reuse economics (marginal vs standalone usage, reuse hits), the
//!   active-query gauge, and the drain-to-baseline verdict.
//!
//! ## Determinism-by-seed contract
//!
//! A scenario's `seed` is the *only* source of randomness: the topology,
//! the runtime's churn/jitter streams, the arrival counts, the template
//! draws, and the session lengths all derive from it through independent
//! [`derive_rng`](sbon_netsim::rng::derive_rng) streams. Running the same
//! scenario value twice reproduces the same report bit-for-bit — including
//! every float in the usage time series — which is what lets CI smoke-test
//! a flash-crowd run and assert exact post-conditions.
//!
//! ## Example
//!
//! ```
//! use sbon_core::multiquery::ReuseScope;
//! use sbon_overlay::RuntimeConfig;
//! use sbon_workload::prelude::*;
//!
//! let scenario = Scenario {
//!     workload: WorkloadSpec {
//!         arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
//!         duration: SessionDuration::Exponential { mean_ms: 5_000.0 },
//!         ..Default::default()
//!     },
//!     ..Scenario::new(
//!         "doc",
//!         80,
//!         42,
//!         RuntimeConfig::builder().horizon_ms(8_000.0).reuse(ReuseScope::All).build(),
//!     )
//! };
//! let report = scenario.run();
//! assert_eq!(report.arrivals, report.departures); // drain_at_end
//! assert!(report.drained_to_baseline());
//! ```

#![forbid(unsafe_code)]

pub mod arrival;
pub mod scenario;
pub mod session;
pub mod templates;

pub use arrival::{sample_poisson, ArrivalProcess};
pub use scenario::{CatalogSpec, Scenario, ScenarioReport, WorkloadSpec};
pub use session::SessionDuration;
pub use templates::{QueryGenerator, QueryTemplate};

/// One-stop imports for scenario authors.
pub mod prelude {
    pub use crate::arrival::ArrivalProcess;
    pub use crate::scenario::{CatalogSpec, Scenario, ScenarioReport, WorkloadSpec};
    pub use crate::session::SessionDuration;
    pub use crate::templates::{QueryGenerator, QueryTemplate};
}
