//! Declarative scenarios: topology + runtime + workload, driven end-to-end.
//!
//! A [`Scenario`] composes everything a run needs — the overlay size, a
//! full [`RuntimeConfig`] (deployment wave, churn, jitter, reuse scope), a
//! stream-catalog spec, and a [`WorkloadSpec`] (arrival process, session
//! durations, template mix) — and [`Scenario::run`] drives the whole thing
//! through the runtime's session API: per tick it samples arrivals, deploys
//! them mid-run, advances the simulation one tick, and departs the sessions
//! whose time is up. This replaces the hand-rolled driver loops the
//! examples used to copy-paste.
//!
//! **Determinism by seed**: every random choice — topology, runtime churn,
//! arrival counts, template draws, session lengths — derives from
//! `Scenario::seed` through independent [`derive_rng`] streams, so the same
//! scenario value reproduces the same [`ScenarioReport`] bit-for-bit.

use rand::Rng;

use sbon_netsim::graph::NodeId;
use sbon_netsim::rng::derive_rng;
use sbon_netsim::topology::transit_stub::{generate, TransitStubConfig};
use sbon_netsim::topology::Topology;
use sbon_overlay::{CircuitHandle, OverlayRuntime, RunReport, RuntimeConfig};
use sbon_query::stream::StreamCatalog;

use crate::arrival::ArrivalProcess;
use crate::session::SessionDuration;
use crate::templates::{QueryGenerator, QueryTemplate};

/// The shared feed catalog a scenario registers before queries arrive.
#[derive(Clone, Debug)]
pub struct CatalogSpec {
    /// Number of feeds, pinned on random (arrived) host candidates.
    pub feeds: usize,
    /// Publication rate of every feed.
    pub rate: f64,
    /// Zipf exponent of feed popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Uniform pairwise join selectivity.
    pub join_selectivity: f64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec { feeds: 16, rate: 10.0, zipf_exponent: 1.1, join_selectivity: 0.02 }
    }
}

/// The query traffic a scenario offers.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// When queries arrive.
    pub arrival: ArrivalProcess,
    /// How long each stays.
    pub duration: SessionDuration,
    /// Weighted template mix the arrivals draw from.
    pub templates: Vec<(QueryTemplate, f64)>,
    /// Hard cap on total arrivals (`None` = only the horizon bounds them).
    pub max_arrivals: Option<usize>,
    /// Undeploy every still-live session once the horizon is reached, so
    /// the run ends at the pre-workload baseline (refcounts fully drained).
    pub drain_at_end: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            duration: SessionDuration::Exponential { mean_ms: 10_000.0 },
            templates: vec![
                (QueryTemplate::PopularFeedJoin { ways: 2 }, 3.0),
                (QueryTemplate::PopularFeedJoin { ways: 3 }, 2.0),
                (QueryTemplate::FanInAggregate { ways: 3, ratio: 0.2 }, 1.0),
                (QueryTemplate::ChainFilter { filters: 2, selectivity: 0.3 }, 1.0),
            ],
            max_arrivals: None,
            drain_at_end: true,
        }
    }
}

/// A declarative, seed-deterministic experiment: topology + runtime config
/// + workload, run end-to-end by [`Scenario::run`].
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name for harness output.
    pub name: String,
    /// Transit-stub overlay size (approximate; the generator rounds).
    pub nodes: usize,
    /// Master seed every random stream derives from.
    pub seed: u64,
    /// Full runtime configuration (tick, horizon, churn, jitter, backends,
    /// deployment wave, reuse scope, ...).
    pub runtime: RuntimeConfig,
    /// Feed catalog spec.
    pub catalog: CatalogSpec,
    /// Offered query traffic.
    pub workload: WorkloadSpec,
}

impl Scenario {
    /// A scenario with default catalog and workload over the given runtime.
    pub fn new(name: impl Into<String>, nodes: usize, seed: u64, runtime: RuntimeConfig) -> Self {
        Scenario {
            name: name.into(),
            nodes,
            seed,
            runtime,
            catalog: CatalogSpec::default(),
            workload: WorkloadSpec::default(),
        }
    }

    /// Generates the scenario's topology and runs it end-to-end.
    pub fn run(&self) -> ScenarioReport {
        let topology = generate(&TransitStubConfig::with_total_nodes(self.nodes), self.seed);
        self.run_on(&topology)
    }

    /// Runs the scenario over an existing topology (callers that sweep
    /// workloads over one network build it once).
    pub fn run_on(&self, topology: &Topology) -> ScenarioReport {
        if let ArrivalProcess::Diurnal { amplitude, .. } = self.workload.arrival {
            assert!(
                (0.0..=1.0).contains(&amplitude),
                "diurnal amplitude must be in [0, 1] for the closed-form integral"
            );
        }
        let mut rt = OverlayRuntime::new(topology, self.seed, self.runtime.clone());

        // Feed catalog pinned on hosts that are present from tick 0, so
        // producers exist even under a deployment wave.
        let mut cat_rng = derive_rng(self.seed, 0xCA7A_1065);
        let hosts: Vec<NodeId> =
            topology.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
        assert!(!hosts.is_empty(), "no arrived host candidates to pin feeds on");
        let mut streams = StreamCatalog::new();
        for i in 0..self.catalog.feeds {
            let host = hosts[cat_rng.gen_range(0..hosts.len())];
            streams.register(format!("feed{i}"), self.catalog.rate, host);
        }
        let generator = QueryGenerator::new(
            streams,
            self.catalog.join_selectivity,
            self.catalog.zipf_exponent,
            hosts,
            &self.workload.templates,
        );

        let baseline_usage = rt.instantaneous_usage();
        let mut wl_rng = derive_rng(self.seed, 0x3070_AD01);
        let tick_ms = self.runtime.tick_ms();
        let cap = self.workload.max_arrivals.unwrap_or(usize::MAX);

        let mut session = rt.start_run();
        let mut live: Vec<(f64, CircuitHandle)> = Vec::new();
        let mut now_ms = 0.0f64;
        let mut offered = 0usize;
        let mut rejected = 0usize;
        let mut peak_active = 0usize;
        let mut peak_retained = 0usize;
        loop {
            // Arrivals during the upcoming tick [now, now + tick) — but
            // only when that tick will actually run: the window past the
            // final tick must not admit phantom queries that exist for
            // zero simulated time.
            let will_tick = now_ms + tick_ms <= self.runtime.horizon_ms();
            let mut count = if will_tick {
                self.workload.arrival.sample_arrivals(now_ms, tick_ms, &mut wl_rng)
            } else {
                0
            };
            count = count.min(cap - offered);
            for _ in 0..count {
                offered += 1;
                let query = generator.draw(&mut wl_rng);
                // The session clock starts at the end of the admitting tick
                // (the deploy becomes visible to that tick's accounting).
                let depart_at = now_ms + tick_ms + self.workload.duration.sample(&mut wl_rng);
                match rt.deploy(query) {
                    Some(handle) => live.push((depart_at, handle)),
                    None => rejected += 1,
                }
            }
            let more = rt.advance_ticks(&mut session, 1);
            now_ms += tick_ms;
            peak_active = peak_active.max(rt.active_queries());
            peak_retained = peak_retained.max(rt.retained_shared_subtrees());
            // Departures whose session expired by the tick that just ran.
            let mut idx = 0;
            while idx < live.len() {
                if live[idx].0 <= now_ms {
                    let (_, handle) = live.swap_remove(idx);
                    rt.undeploy(handle);
                } else {
                    idx += 1;
                }
            }
            if !more {
                break;
            }
        }
        if self.workload.drain_at_end {
            for (_, handle) in live.drain(..) {
                rt.undeploy(handle);
            }
        }
        let run = rt.finish_run(session);
        let lifecycle = rt.lifecycle_stats();
        let (subscriptions, instances, retained_records) = rt
            .multiquery()
            .map(|mq| (mq.total_subscriptions(), mq.num_instances(), mq.num_retained()))
            .unwrap_or((0, 0, 0));
        ScenarioReport {
            name: self.name.clone(),
            seed: self.seed,
            nodes: topology.num_nodes(),
            arrivals: lifecycle.arrivals,
            departures: lifecycle.departures,
            offered,
            rejected,
            reuse_hits: lifecycle.reuse_hits,
            reused_services: lifecycle.reused_services,
            marginal_usage: lifecycle.marginal_usage,
            standalone_usage: lifecycle.standalone_usage,
            peak_active,
            final_active: rt.active_queries(),
            peak_retained,
            final_retained: rt.retained_shared_subtrees(),
            final_subscriptions: subscriptions,
            final_instances: instances,
            final_retained_records: retained_records,
            baseline_usage,
            final_usage: rt.instantaneous_usage(),
            run,
        }
    }
}

/// Everything a scenario run produced: the runtime's usage time series plus
/// the workload-level accounting (arrival/departure totals, reuse
/// economics, drain state).
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Seed the run derived from.
    pub seed: u64,
    /// Overlay size actually generated.
    pub nodes: usize,
    /// Successful deployments.
    pub arrivals: usize,
    /// Undeployments (including the end-of-run drain when enabled).
    pub departures: usize,
    /// Arrivals the process offered (deployed + rejected).
    pub offered: usize,
    /// Offered queries the optimizer could not place.
    pub rejected: usize,
    /// Arrivals that attached to ≥ 1 running instance.
    pub reuse_hits: usize,
    /// Instances attached to, summed over arrivals.
    pub reused_services: usize,
    /// Σ marginal network usage at deploy time.
    pub marginal_usage: f64,
    /// Σ standalone network usage the same queries would have cost alone.
    pub standalone_usage: f64,
    /// Most queries concurrently active at any tick boundary.
    pub peak_active: usize,
    /// Queries still active after the run (0 when draining).
    pub final_active: usize,
    /// Most retained shared subtrees at any tick boundary.
    pub peak_retained: usize,
    /// Retained shared subtrees after the run (0 when fully drained).
    pub final_retained: usize,
    /// Outstanding reuse subscriptions after the run (0 when drained).
    pub final_subscriptions: usize,
    /// Instances left in the reuse index after the run.
    pub final_instances: usize,
    /// Departed-but-retained registry records after the run.
    pub final_retained_records: usize,
    /// Instantaneous usage before any workload query arrived.
    pub baseline_usage: f64,
    /// Instantaneous usage after the run (equals `baseline_usage`
    /// bit-for-bit when the workload fully drained).
    pub final_usage: f64,
    /// The runtime's tick-level report (samples carry the active-query
    /// gauge).
    pub run: RunReport,
}

impl ScenarioReport {
    /// Fraction of standalone usage that reuse saved at deploy time.
    pub fn reuse_savings(&self) -> f64 {
        if self.standalone_usage <= 0.0 {
            return 0.0;
        }
        1.0 - self.marginal_usage / self.standalone_usage
    }

    /// True when the workload fully drained: no active queries, no retained
    /// subtrees, no outstanding subscriptions, and usage back at the
    /// pre-workload baseline bit-for-bit.
    pub fn drained_to_baseline(&self) -> bool {
        self.final_active == 0
            && self.final_retained == 0
            && self.final_subscriptions == 0
            && self.final_usage.to_bits() == self.baseline_usage.to_bits()
    }

    /// Prints the standard harness summary.
    pub fn print_summary(&self) {
        println!("scenario `{}` (seed {}, {} nodes):", self.name, self.seed, self.nodes);
        println!(
            "  {} offered, {} deployed, {} rejected, {} departed over {} ticks",
            self.offered,
            self.arrivals,
            self.rejected,
            self.departures,
            self.run.samples.len()
        );
        println!(
            "  active queries: peak {}, final {}; retained shared subtrees: peak {}, final {}",
            self.peak_active, self.final_active, self.peak_retained, self.final_retained
        );
        println!(
            "  reuse: {} hits ({} instances attached), marginal {:.1} vs standalone {:.1} \
             ({:.1}% saved)",
            self.reuse_hits,
            self.reused_services,
            self.marginal_usage,
            self.standalone_usage,
            100.0 * self.reuse_savings()
        );
        println!(
            "  usage: baseline {:.3} -> final {:.3} ({}), {} migrations, {} replacements",
            self.baseline_usage,
            self.final_usage,
            if self.drained_to_baseline() { "fully drained" } else { "still loaded" },
            self.run.migrations,
            self.run.replacements
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_core::multiquery::ReuseScope;
    use sbon_netsim::load::ChurnProcess;

    fn small_runtime(horizon_ms: f64, reuse: ReuseScope) -> RuntimeConfig {
        RuntimeConfig::builder()
            .horizon_ms(horizon_ms)
            .churn(ChurnProcess::SparseWalk { nodes_per_tick: 4, std_dev: 0.1 })
            .reuse(reuse)
            .build()
    }

    fn scenario(seed: u64, reuse: ReuseScope) -> Scenario {
        Scenario {
            workload: WorkloadSpec {
                arrival: ArrivalProcess::Poisson { rate_per_sec: 1.5 },
                duration: SessionDuration::Exponential { mean_ms: 4_000.0 },
                ..Default::default()
            },
            ..Scenario::new("test", 80, seed, small_runtime(12_000.0, reuse))
        }
    }

    #[test]
    fn scenario_runs_arrivals_and_departures() {
        let report = scenario(1, ReuseScope::None).run();
        assert!(report.arrivals > 5, "expected some arrivals, got {}", report.arrivals);
        assert_eq!(report.arrivals + report.rejected, report.offered);
        assert_eq!(report.departures, report.arrivals, "drain departs everyone");
        assert_eq!(report.run.samples.len(), 12);
        assert!(report.peak_active > 0);
        assert!(report.drained_to_baseline());
        assert_eq!(report.reuse_hits, 0, "reuse disabled");
    }

    #[test]
    fn scenario_is_deterministic_by_seed() {
        let a = scenario(7, ReuseScope::All).run();
        let b = scenario(7, ReuseScope::All).run();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.reuse_hits, b.reuse_hits);
        assert_eq!(a.marginal_usage.to_bits(), b.marginal_usage.to_bits());
        for (x, y) in a.run.samples.iter().zip(&b.run.samples) {
            assert_eq!(x.network_usage.to_bits(), y.network_usage.to_bits());
            assert_eq!(x.active_queries, y.active_queries);
        }
        let c = scenario(8, ReuseScope::All).run();
        assert_ne!(
            (a.arrivals, a.marginal_usage.to_bits()),
            (c.arrivals, c.marginal_usage.to_bits()),
            "different seeds must diverge"
        );
    }

    #[test]
    fn reuse_scenario_saves_and_drains() {
        let report = scenario(3, ReuseScope::All).run();
        assert!(report.reuse_hits > 0, "Zipf overlap must produce reuse");
        assert!(report.marginal_usage < report.standalone_usage);
        assert!(report.reuse_savings() > 0.0);
        assert!(report.drained_to_baseline());
        assert_eq!(report.final_subscriptions, 0);
        assert_eq!(report.final_instances, 0);
        assert_eq!(report.final_retained_records, 0);
    }

    #[test]
    fn flash_crowd_bursts_the_active_gauge() {
        let mut s = scenario(5, ReuseScope::All);
        s.workload.arrival = ArrivalProcess::FlashCrowd {
            base_per_sec: 0.2,
            peak_per_sec: 4.0,
            start_ms: 3_000.0,
            end_ms: 6_000.0,
        };
        s.workload.duration =
            SessionDuration::BoundedPareto { alpha: 1.3, min_ms: 1_000.0, max_ms: 20_000.0 };
        let report = s.run();
        assert!(report.arrivals > 0);
        // The burst window must dominate arrivals.
        let gauge_peak = report.run.samples.iter().map(|s| s.active_queries).max().unwrap_or(0);
        assert_eq!(gauge_peak, report.peak_active);
        assert!(report.drained_to_baseline());
    }

    #[test]
    fn max_arrivals_caps_the_offered_load() {
        let mut s = scenario(9, ReuseScope::None);
        s.workload.max_arrivals = Some(4);
        let report = s.run();
        assert!(report.offered <= 4);
        assert_eq!(report.arrivals + report.rejected, report.offered);
    }
}
