//! Session-duration distributions: how long an arriving query stays
//! deployed before its tenant departs.

use rand::Rng;
use sbon_netsim::rng::{sample_bounded_pareto, sample_exponential};

/// How long a query session lasts, in simulated milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionDuration {
    /// Memoryless sessions with the given mean.
    Exponential {
        /// Mean session length (ms).
        mean_ms: f64,
    },
    /// Heavy-tailed sessions: most are near `min_ms`, a few approach
    /// `max_ms` — the long-lived-subscriber shape.
    BoundedPareto {
        /// Tail exponent (> 0; smaller = heavier tail).
        alpha: f64,
        /// Shortest session (ms, > 0).
        min_ms: f64,
        /// Longest session (ms, > `min_ms`).
        max_ms: f64,
    },
    /// Every session lasts exactly this long.
    Fixed {
        /// Session length (ms).
        ms: f64,
    },
}

impl SessionDuration {
    /// Draws one session length (ms).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            SessionDuration::Exponential { mean_ms } => {
                debug_assert!(mean_ms > 0.0);
                sample_exponential(rng, 1.0 / mean_ms)
            }
            SessionDuration::BoundedPareto { alpha, min_ms, max_ms } => {
                sample_bounded_pareto(rng, alpha, min_ms, max_ms)
            }
            SessionDuration::Fixed { ms } => ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_netsim::rng::rng_from_seed;

    #[test]
    fn exponential_matches_mean() {
        let d = SessionDuration::Exponential { mean_ms: 5_000.0 };
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5_000.0).abs() < 150.0, "mean={mean}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_skews_low() {
        let d = SessionDuration::BoundedPareto { alpha: 1.2, min_ms: 1_000.0, max_ms: 60_000.0 };
        let mut rng = rng_from_seed(2);
        let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (1_000.0..=60_000.0).contains(&s)));
        let below_5s = samples.iter().filter(|&&s| s < 5_000.0).count();
        assert!(below_5s > 6_000, "heavy tail means most sessions are short: {below_5s}");
    }

    #[test]
    fn fixed_is_fixed() {
        let d = SessionDuration::Fixed { ms: 1_234.0 };
        let mut rng = rng_from_seed(3);
        assert_eq!(d.sample(&mut rng), 1_234.0);
    }
}
