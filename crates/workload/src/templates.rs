//! Zipf query-template generation over a shared [`StreamCatalog`].
//!
//! Tenants subscribe to overlapping combinations of a few popular feeds:
//! stream popularity follows a Zipf law, and each arriving query is drawn
//! from a weighted mix of templates — popular-feed joins, fan-in
//! aggregations, and chain filters. Skewed popularity is what makes
//! multi-query reuse pay: the more two tenants' join sets overlap, the more
//! often an arriving circuit finds its subtree already running.

use rand::Rng;

use sbon_core::optimizer::QuerySpec;
use sbon_netsim::graph::NodeId;
use sbon_netsim::rng::Zipf;
use sbon_query::stats::StatsCatalog;
use sbon_query::stream::{StreamCatalog, StreamId};

/// One query shape an arriving tenant may ask for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryTemplate {
    /// A `ways`-way join over Zipf-popular feeds delivered to a random
    /// consumer — the bread-and-butter continuous query.
    PopularFeedJoin {
        /// Streams joined (clamped to the catalog size; ≥ 1).
        ways: usize,
    },
    /// A `ways`-way join rolled up by an aggregation before delivery
    /// (fan-in: high input rate, low delivery rate).
    FanInAggregate {
        /// Streams joined (clamped to the catalog size; ≥ 1).
        ways: usize,
        /// Aggregation output ratio in `(0, 1]`.
        ratio: f64,
    },
    /// A single stream pushed through a chain of `filters` selections — the
    /// alert/watchlist shape.
    ChainFilter {
        /// Stacked σ services above the source (≥ 1).
        filters: usize,
        /// Per-filter selectivity in `(0, 1]`.
        selectivity: f64,
    },
}

/// Draws [`QuerySpec`]s from a weighted template mix over one catalog.
///
/// All randomness flows through the caller's RNG: the same generator and
/// RNG seed reproduce the same query sequence bit-for-bit.
#[derive(Clone, Debug)]
pub struct QueryGenerator {
    catalog: StreamCatalog,
    stats: StatsCatalog,
    zipf: Zipf,
    consumers: Vec<NodeId>,
    /// `(template, cumulative weight)` for roulette selection.
    mix_cdf: Vec<(QueryTemplate, f64)>,
}

impl QueryGenerator {
    /// Builds a generator. `zipf_exponent` skews feed popularity (0 =
    /// uniform); `join_selectivity` is the uniform pairwise selectivity
    /// recorded in the stats catalog; `consumers` are the candidate
    /// consumer hosts (drawn uniformly). Panics on an empty catalog,
    /// consumer set, or template mix, or on non-positive weights.
    pub fn new(
        catalog: StreamCatalog,
        join_selectivity: f64,
        zipf_exponent: f64,
        consumers: Vec<NodeId>,
        mix: &[(QueryTemplate, f64)],
    ) -> Self {
        assert!(!catalog.is_empty(), "need at least one stream");
        assert!(!consumers.is_empty(), "need at least one consumer host");
        assert!(!mix.is_empty(), "need at least one template");
        let stats = StatsCatalog::from_streams(&catalog, join_selectivity);
        let zipf = Zipf::new(catalog.len(), zipf_exponent);
        let mut acc = 0.0;
        let mix_cdf = mix
            .iter()
            .map(|&(t, w)| {
                assert!(w > 0.0 && w.is_finite(), "template weights must be positive");
                acc += w;
                (t, acc)
            })
            .collect();
        QueryGenerator { catalog, stats, zipf, consumers, mix_cdf }
    }

    /// The catalog the generator draws from.
    pub fn catalog(&self) -> &StreamCatalog {
        &self.catalog
    }

    /// Draws one query.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> QuerySpec {
        let total = self.mix_cdf.last().expect("non-empty mix").1;
        let u = rng.gen_range(0.0..total);
        let template = self
            .mix_cdf
            .iter()
            .find(|&&(_, cum)| u < cum)
            .map(|&(t, _)| t)
            .unwrap_or(self.mix_cdf.last().expect("non-empty mix").0);
        let consumer = self.consumers[rng.gen_range(0..self.consumers.len())];
        match template {
            QueryTemplate::PopularFeedJoin { ways } => {
                let set = self.draw_streams(ways, rng);
                QuerySpec::new(self.catalog.clone(), self.stats.clone(), set, consumer)
            }
            QueryTemplate::FanInAggregate { ways, ratio } => {
                let set = self.draw_streams(ways, rng);
                QuerySpec::new(self.catalog.clone(), self.stats.clone(), set, consumer)
                    .with_root_aggregate(ratio)
            }
            QueryTemplate::ChainFilter { filters, selectivity } => {
                let set = self.draw_streams(1, rng);
                let stream = set[0];
                let mut q = QuerySpec::new(self.catalog.clone(), self.stats.clone(), set, consumer);
                for _ in 0..filters.max(1) {
                    q = q.with_source_filter(stream, selectivity);
                }
                q
            }
        }
    }

    /// Draws `ways` *distinct* streams by Zipf popularity (clamped to the
    /// catalog size).
    fn draw_streams<R: Rng + ?Sized>(&self, ways: usize, rng: &mut R) -> Vec<StreamId> {
        let ways = ways.clamp(1, self.catalog.len());
        let mut set: Vec<StreamId> = Vec::with_capacity(ways);
        while set.len() < ways {
            let id = StreamId(self.zipf.sample(rng) as u32);
            if !set.contains(&id) {
                set.push(id);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbon_netsim::rng::rng_from_seed;

    fn catalog(feeds: usize) -> StreamCatalog {
        let mut c = StreamCatalog::new();
        for i in 0..feeds {
            c.register(format!("feed{i}"), 10.0, NodeId(i as u32));
        }
        c
    }

    fn generator(mix: &[(QueryTemplate, f64)]) -> QueryGenerator {
        QueryGenerator::new(catalog(12), 0.02, 1.2, (20..30).map(NodeId).collect(), mix)
    }

    #[test]
    fn popular_join_draws_distinct_streams() {
        let g = generator(&[(QueryTemplate::PopularFeedJoin { ways: 3 }, 1.0)]);
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let q = g.draw(&mut rng);
            assert_eq!(q.join_set.len(), 3);
            let mut dedup = q.join_set.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "streams must be distinct");
            assert!(q.root_aggregate.is_none());
        }
    }

    #[test]
    fn zipf_skew_prefers_popular_feeds() {
        let g = generator(&[(QueryTemplate::PopularFeedJoin { ways: 2 }, 1.0)]);
        let mut rng = rng_from_seed(2);
        let mut counts = vec![0usize; 12];
        for _ in 0..5_000 {
            for s in g.draw(&mut rng).join_set {
                counts[s.index()] += 1;
            }
        }
        assert!(counts[0] > counts[6], "feed0 must beat mid-rank: {counts:?}");
        assert!(counts[0] > counts[11], "feed0 must beat the tail: {counts:?}");
    }

    #[test]
    fn fan_in_aggregate_decorates_the_root() {
        let g = generator(&[(QueryTemplate::FanInAggregate { ways: 4, ratio: 0.1 }, 1.0)]);
        let mut rng = rng_from_seed(3);
        let q = g.draw(&mut rng);
        assert_eq!(q.join_set.len(), 4);
        assert_eq!(q.root_aggregate, Some(0.1));
    }

    #[test]
    fn chain_filter_stacks_selections_on_one_stream() {
        let g = generator(&[(QueryTemplate::ChainFilter { filters: 3, selectivity: 0.5 }, 1.0)]);
        let mut rng = rng_from_seed(4);
        let q = g.draw(&mut rng);
        assert_eq!(q.join_set.len(), 1);
        assert_eq!(q.source_filters.len(), 3);
        assert!(q.source_filters.iter().all(|&(s, sel)| s == q.join_set[0] && sel == 0.5));
    }

    #[test]
    fn mixed_templates_all_appear() {
        let g = generator(&[
            (QueryTemplate::PopularFeedJoin { ways: 2 }, 3.0),
            (QueryTemplate::FanInAggregate { ways: 3, ratio: 0.2 }, 1.0),
            (QueryTemplate::ChainFilter { filters: 2, selectivity: 0.3 }, 1.0),
        ]);
        let mut rng = rng_from_seed(5);
        let (mut joins, mut aggs, mut chains) = (0, 0, 0);
        for _ in 0..500 {
            let q = g.draw(&mut rng);
            if q.root_aggregate.is_some() {
                aggs += 1;
            } else if !q.source_filters.is_empty() {
                chains += 1;
            } else {
                joins += 1;
            }
        }
        assert!(joins > aggs && joins > chains, "{joins}/{aggs}/{chains}");
        assert!(aggs > 0 && chains > 0);
    }

    #[test]
    fn generation_is_deterministic_by_seed() {
        let g = generator(&[
            (QueryTemplate::PopularFeedJoin { ways: 2 }, 1.0),
            (QueryTemplate::ChainFilter { filters: 1, selectivity: 0.4 }, 1.0),
        ]);
        let draw = || {
            let mut rng = rng_from_seed(7);
            (0..64)
                .map(|_| {
                    let q = g.draw(&mut rng);
                    (q.join_set.clone(), q.consumer, q.source_filters.clone())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
