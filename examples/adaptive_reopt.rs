//! Adaptive re-optimization of long-running circuits under churn.
//!
//! The paper's "time" challenge: continuous queries outlive the network
//! conditions they were optimized for. This example runs the same workload
//! twice on the discrete-event overlay runtime — once static, once with
//! threshold-based local re-optimization — and prints the usage timelines.
//!
//! ```sh
//! cargo run --release --example adaptive_reopt
//! ```

use sbon::core::reopt::ReoptPolicy;
use sbon::overlay::{JitterModel, OverlayRuntime, RuntimeConfig};
use sbon::prelude::*;

fn run(adaptive: bool) -> sbon::overlay::RunReport {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(150), 5);
    let config = RuntimeConfig::builder()
        .tick_ms(1_000.0)
        .horizon_ms(120_000.0) // 2 simulated minutes
        .reopt_interval_ms(adaptive.then_some(10_000.0))
        .policy(ReoptPolicy { migration_threshold: 0.05, replacement_threshold: 0.15 })
        .churn(ChurnProcess::RandomWalk { std_dev: 0.10 })
        .latency_jitter(JitterModel { edges_per_tick: 120, ..Default::default() })
        .migration_penalty(25.0)
        .build();
    let mut rt = OverlayRuntime::new(&topo, 5, config);
    let hosts = topo.host_candidates();
    for q in 0..4 {
        let base = q * 12;
        let query = QuerySpec::join_star(
            &[hosts[base], hosts[base + 3], hosts[base + 6], hosts[base + 9]],
            hosts[base + 11],
            10.0,
            0.02,
        );
        rt.deploy(query).expect("deployment succeeds");
    }
    rt.run()
}

fn main() {
    println!("running static policy...");
    let static_report = run(false);
    println!("running adaptive policy...");
    let adaptive_report = run(true);

    println!("\n{:>8} {:>14} {:>14}", "t (s)", "static usage", "adaptive usage");
    for (s, a) in static_report.samples.iter().zip(&adaptive_report.samples).step_by(10) {
        println!("{:>8.0} {:>14.1} {:>14.1}", s.time_ms / 1000.0, s.network_usage, a.network_usage);
    }

    println!("\nstatic   total cost: {:>12.0}", static_report.total_cost());
    println!(
        "adaptive total cost: {:>12.0} ({} migrations, adaptation penalty {:.0})",
        adaptive_report.total_cost(),
        adaptive_report.migrations,
        adaptive_report.adaptation_cost
    );
    println!(
        "adaptation saves {:.1}% of cumulative network usage",
        100.0 * (1.0 - adaptive_report.total_cost() / static_report.total_cost())
    );
}
