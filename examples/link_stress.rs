//! Underlay link stress: where do a workload's bytes actually flow?
//!
//! The optimizer's objective — network usage = Σ rate × latency — says how
//! much data is in transit, not which physical links carry it. This example
//! deploys 12 circuits, routes them over the underlay's shortest paths, and
//! prints the hottest physical links, comparing the integrated optimizer
//! against the two-step baseline. Network-aware placement not only lowers
//! total usage, it also spreads load off the backbone.
//!
//! ```sh
//! cargo run --release --example link_stress
//! ```

use sbon::netsim::topology::NodeRole;
use sbon::overlay::LinkTraffic;
use sbon::prelude::*;

fn main() {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(200), 13);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, 13);
    let mut rng = rng_from_seed(13);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.6 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    let hosts = topo.host_candidates();

    let queries: Vec<QuerySpec> = (0..12)
        .map(|q| {
            let b = (q * 13) % (hosts.len() - 5);
            QuerySpec::join_star(
                &[hosts[b], hosts[b + 1], hosts[b + 2], hosts[b + 3]],
                hosts[b + 4],
                10.0,
                0.02,
            )
        })
        .collect();

    let report = |label: &str, usage_and_traffic: (f64, LinkTraffic)| {
        let (usage, traffic) = usage_and_traffic;
        println!("\n{label}:");
        println!(
            "  total network usage {usage:.1}; {} underlay links loaded",
            traffic.loaded_edges()
        );
        println!("  hottest links (rate / latency / kind):");
        for (edge_idx, rate) in traffic.top_hot_links(5) {
            let e = &topo.graph.edges()[edge_idx];
            let kind = match (&topo.roles[e.a.index()], &topo.roles[e.b.index()]) {
                (NodeRole::Transit { .. }, NodeRole::Transit { .. }) => "backbone",
                (NodeRole::Stub { .. }, NodeRole::Stub { .. }) => "stub",
                _ => "access",
            };
            println!("    {} ↔ {}  rate {:>7.1}  {:>6.1} ms  {kind}", e.a, e.b, rate, e.latency_ms);
        }
        println!("  max link stress: {:.1}", traffic.max_stress());
    };

    for (label, integrated) in [("two-step baseline", false), ("integrated optimizer", true)] {
        let mut traffic = LinkTraffic::zero(&topo);
        let mut usage = 0.0;
        for q in &queries {
            let placed = if integrated {
                IntegratedOptimizer::new(OptimizerConfig::default())
                    .optimize(q, &space, &latency)
                    .expect("optimizes")
            } else {
                TwoStepOptimizer::new(OptimizerConfig::default())
                    .optimize(q, &space, &latency)
                    .expect("optimizes")
            };
            traffic.charge_circuit(&topo, &placed.circuit, &placed.placement);
            usage += placed.cost.network_usage;
        }
        report(label, (usage, traffic));
    }
}
