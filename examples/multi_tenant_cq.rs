//! Multi-tenant continuous queries: radius-pruned service reuse over a
//! full tenant lifecycle.
//!
//! Many tenants subscribe to overlapping combinations of a few popular
//! feeds (market data, security events, ...). Section 3.4's multi-query
//! optimizer merges identical operator subtrees — but only searches for
//! reuse candidates within a cost-space radius of each new service's
//! virtual coordinate, keeping per-query optimization cheap.
//!
//! Tenants here *arrive and depart* through the `sbon_workload` scenario
//! driver (no hand-rolled loop, no eager all-pairs matrix — the runtime
//! serves ground truth from the default-config lazy backend): sharing is
//! refcounted, a departing tenant's join survives as a retained shared
//! subtree while subscribers remain, and the last departure tears it down
//! and returns usage accounting to the pre-workload baseline.
//!
//! ```sh
//! cargo run --release --example multi_tenant_cq
//! ```

use sbon::core::multiquery::ReuseScope;
use sbon::overlay::{LatencyBackend, RuntimeConfig};
use sbon::prelude::*;

fn main() {
    let runtime = RuntimeConfig::builder()
        .horizon_ms(60_000.0)
        .churn(ChurnProcess::SparseWalk { nodes_per_tick: 8, std_dev: 0.1 })
        // Ground truth on demand: per-source Dijkstra rows instead of the
        // eager O(n²) matrix the old driver loop materialized up front.
        .latency_backend(LatencyBackend::Lazy)
        // The paper's §3.4 pruning: only instances within cost-space
        // radius 40 of a new service's ideal coordinate are considered.
        .reuse(ReuseScope::Radius(40.0))
        .build();
    let scenario = Scenario {
        catalog: CatalogSpec { feeds: 12, rate: 10.0, zipf_exponent: 1.2, join_selectivity: 0.02 },
        workload: WorkloadSpec {
            arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            duration: SessionDuration::BoundedPareto {
                alpha: 1.2,
                min_ms: 5_000.0,
                max_ms: 55_000.0,
            },
            templates: vec![
                (QueryTemplate::PopularFeedJoin { ways: 2 }, 3.0),
                (QueryTemplate::PopularFeedJoin { ways: 3 }, 1.0),
            ],
            max_arrivals: None,
            drain_at_end: true,
        },
        ..Scenario::new("multi-tenant continuous queries", 300, 99, runtime)
    };

    let report = scenario.run();
    report.print_summary();

    // Refcount teardown in action: the gauge rises with the tenant wave,
    // departures retain still-subscribed joins, and the drain returns both
    // counters — and usage — to zero.
    println!("\nactive-query gauge over the run (every 5th tick):");
    for s in report.run.samples.iter().step_by(5) {
        println!(
            "  t={:>6.0} ms  active={:<3} usage={:>10.1}",
            s.time_ms, s.active_queries, s.network_usage
        );
    }
    println!("\nreuse-refcount teardown:");
    println!(
        "  {} departures released their subscriptions; retained shared subtrees peaked at {}",
        report.departures, report.peak_retained
    );
    println!(
        "  after the drain: {} retained subtrees, {} outstanding subscriptions, {} instances \
         ({} — final usage {:.3} vs baseline {:.3})",
        report.final_retained,
        report.final_subscriptions,
        report.final_instances,
        if report.drained_to_baseline() { "fully drained" } else { "NOT drained" },
        report.final_usage,
        report.baseline_usage
    );
    assert!(report.drained_to_baseline(), "tenancy refcounts must drain to zero");
}
