//! Multi-tenant continuous queries: radius-pruned service reuse.
//!
//! Many tenants subscribe to overlapping combinations of a few popular
//! feeds (market data, security events, ...). Section 3.4's multi-query
//! optimizer merges identical operator subtrees — but only searches for
//! reuse candidates within a cost-space radius of each new service's
//! virtual coordinate, keeping per-query optimization cheap.
//!
//! ```sh
//! cargo run --release --example multi_tenant_cq
//! ```

use rand::Rng;

use sbon::core::multiquery::{MultiQueryOptimizer, ReuseScope};
use sbon::netsim::rng::Zipf;
use sbon::prelude::*;
use sbon::query::stream::StreamCatalog;

fn main() {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(300), 99);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, 99);
    let mut rng = rng_from_seed(99);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.6 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    let hosts = topo.host_candidates();

    // A dozen popular feeds, pinned where their publishers live.
    let mut streams = StreamCatalog::new();
    for i in 0..12 {
        let host = hosts[rng.gen_range(0..hosts.len())];
        streams.register(format!("feed{i}"), 10.0, host);
    }
    let stats = StatsCatalog::from_streams(&streams, 0.02);
    let zipf = Zipf::new(12, 1.2);

    let draw_query = |rng: &mut rand::rngs::StdRng| {
        let mut set = Vec::new();
        while set.len() < 2 {
            let id = sbon::query::stream::StreamId(zipf.sample(rng) as u32);
            if !set.contains(&id) {
                set.push(id);
            }
        }
        let consumer = hosts[rng.gen_range(0..hosts.len())];
        QuerySpec::new(streams.clone(), stats.clone(), set, consumer)
    };

    // 30 tenants arrive one by one; the optimizer reuses running joins
    // found within radius 40 of each new service's ideal coordinate.
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    let mut total_marginal = 0.0;
    let mut total_standalone = 0.0;
    let mut reused_count = 0;
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>10}",
        "tenant", "standalone", "marginal", "reused", "saved"
    );
    for tenant in 0..30 {
        let q = draw_query(&mut rng);
        let out = mq
            .optimize_and_deploy(&q, &space, &latency, ReuseScope::Radius(40.0))
            .expect("deployment succeeds");
        total_marginal += out.marginal_cost.network_usage;
        total_standalone += out.standalone_cost.network_usage;
        if !out.reused.is_empty() {
            reused_count += 1;
        }
        if tenant < 10 || !out.reused.is_empty() && tenant < 20 {
            println!(
                "{:<8} {:>12.1} {:>12.1} {:>8} {:>9.1}%",
                tenant,
                out.standalone_cost.network_usage,
                out.marginal_cost.network_usage,
                out.reused.len(),
                100.0
                    * (1.0
                        - out.marginal_cost.network_usage
                            / out.standalone_cost.network_usage.max(1e-9))
            );
        }
    }

    println!("\nacross 30 tenants:");
    println!("  queries that reused a running service: {reused_count}/30");
    println!(
        "  total marginal usage {:.1} vs standalone {:.1} ({:.1}% saved)",
        total_marginal,
        total_standalone,
        100.0 * (1.0 - total_marginal / total_standalone)
    );
    println!(
        "  running circuits: {}, reusable operator instances: {}",
        mq.num_circuits(),
        mq.num_instances()
    );
}
