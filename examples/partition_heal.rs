//! Partition & heal: the message-passing control plane under a network
//! split.
//!
//! The catalog that backs physical mapping is, in a real SBON, *itself* a
//! distributed system: lookups and registrations are messages routed
//! member-to-member over the same underlay the circuits run on. This
//! example drives [`sbon::dht::RoutedCatalog`] — the protocol-level control
//! plane behind `MapperBackend::Routed` — through a full failure story:
//!
//! 1. **Healthy network.** Coordinate lookups route hop-by-hop from random
//!    origins; every answer must equal the omniscient shared-structure
//!    catalog's, and the run reports the *experienced* latency distribution
//!    (the sum of live link delays along each query's path, not a counter).
//! 2. **Partition.** A contiguous region of the identifier space is severed.
//!    Lookups from the surviving side time out against dead hops, retry
//!    with bounded exponential backoff, suspect the hop, and re-route —
//!    every answer still lands on a *reachable* member (failover).
//!    Registrations whose key owner sits across the cut exhaust their
//!    retries and park as deferred.
//! 3. **Heal.** The partition lifts; deferred registrations flush with
//!    their original stamps (so anything re-registered since wins by
//!    last-writer-wins), and the catalog must reconverge **bit-identically**
//!    — same members, same post-collision ring keys, same ring order, same
//!    lookup answers — to an omniscient twin that applied every operation
//!    instantaneously.
//!
//! ```sh
//! cargo run --release --example partition_heal              # ~2,000 nodes
//! SBON_SMOKE=1 cargo run --release --example partition_heal # CI-sized
//! ```

use rand::Rng;

use sbon::coords::vivaldi::VivaldiConfig;
use sbon::dht::{CoordinateCatalog, ProtoConfig, RingKey, RoutedCatalog};
use sbon::hilbert::{HilbertCurve, Quantizer};
use sbon::netsim::dijkstra::all_pairs_latency;
use sbon::netsim::graph::NodeId;
use sbon::netsim::latency::LatencyProvider;
use sbon::netsim::rng::derive_rng;
use sbon::netsim::topology::transit_stub::{self, TransitStubConfig};

fn main() {
    let smoke = std::env::var_os("SBON_SMOKE").is_some_and(|v| v == "1");
    let (total_nodes, lookups, churns) = if smoke { (300, 200, 80) } else { (2_000, 800, 300) };
    let seed = 2_005;

    // ── The underlay and its embedding ───────────────────────────────────
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(total_nodes), seed);
    let n = topo.num_nodes();
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, seed);
    let dims = embedding.dims();
    println!("underlay: {} nodes, {} edges, {dims}-d Vivaldi embedding", n, topo.graph.num_edges());

    // Quantizer bounds with headroom so churned coordinates stay in band.
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for v in 0..n as u32 {
        for (d, &c) in embedding.coord(NodeId(v)).iter().enumerate() {
            lo[d] = lo[d].min(c);
            hi[d] = hi[d].max(c);
        }
    }
    for d in 0..dims {
        let pad = 0.1 * (hi[d] - lo[d]).max(1.0);
        lo[d] -= pad;
        hi[d] += pad;
    }

    // The routed control plane and its omniscient twin: the twin applies
    // every operation instantaneously on the shared structure; the routed
    // catalog must earn the same state over the wire.
    let fresh = || {
        CoordinateCatalog::new(
            HilbertCurve::new(dims, 12),
            Quantizer::new(lo.clone(), hi.clone(), 12),
            8,
        )
    };
    let mut routed = RoutedCatalog::from_catalog(fresh(), ProtoConfig::default());
    let mut omni = fresh();
    for v in 0..n as u32 {
        let c = embedding.coord(NodeId(v)).to_vec();
        routed.register_direct(v, c.clone());
        omni.insert(v, c);
    }
    // Messages experience the live underlay's shortest-path delays.
    let link = |a: u32, b: u32| latency.latency(NodeId(a), NodeId(b));

    let mut rng = derive_rng(seed, 0x9EA1);
    let random_coord = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
        lo.iter().zip(&hi).map(|(&l, &h)| rng.gen_range(l..h)).collect()
    };

    // ── Phase 1: healthy network ─────────────────────────────────────────
    for _ in 0..lookups {
        let origin = rng.gen_range(0..n as u32);
        let target = random_coord(&mut rng);
        let truth = omni.lookup_closest_traced(&target).expect("populated").member;
        let at = routed.now();
        routed.lookup_routed(origin, &target, at, &link).expect("populated");
        let (_, res) = routed.run_to_quiescence(&link).pop().expect("one lookup in flight");
        assert_eq!(res.member, truth, "healthy routed answer must equal the omniscient one");
    }
    let healthy = routed.stats().clone();
    assert_eq!(healthy.timeouts, 0, "a healthy underlay never times out");
    println!("\nphase 1 — healthy (log2 n = {:.1}):", (n as f64).log2());
    println!("  {healthy}");
    println!("  every answer equals the omniscient catalog's ✓");

    // ── Phase 2: partition ───────────────────────────────────────────────
    // Sever a contiguous quarter of the member space (one "region" of the
    // underlay); messages across the cut are dropped.
    let severed: Vec<u32> = (0..(n / 4) as u32).collect();
    routed.sever(severed.iter().copied());
    let cut_from = routed.stats().clone();

    let mut diverged = 0usize;
    for _ in 0..lookups / 4 {
        let origin = rng.gen_range((n / 4) as u32..n as u32);
        let target = random_coord(&mut rng);
        let truth = omni.lookup_closest_traced(&target).expect("populated").member;
        let at = routed.now();
        routed.lookup_routed(origin, &target, at, &link).expect("populated");
        let (_, res) = routed.run_to_quiescence(&link).pop().expect("one lookup in flight");
        assert!(
            !routed.is_severed(res.member),
            "failover: answers must come from the reachable side"
        );
        if res.member != truth {
            diverged += 1;
        }
    }
    // Churn under the partition: members re-register fresh coordinates.
    // Registrations whose key owner sits across the cut defer until heal;
    // the twin applies everything immediately.
    for _ in 0..churns {
        let m = rng.gen_range(0..n as u32);
        let c = random_coord(&mut rng);
        let at = routed.now();
        routed.register_routed(m, c.clone(), at, &link).expect("ring is populated");
        routed.run_to_quiescence(&link);
        omni.insert(m, c);
    }
    let split = routed.stats().clone();
    let parked = split.deferred - cut_from.deferred;
    assert!(split.timeouts > cut_from.timeouts, "dead hops must time out");
    assert!(split.retries > cut_from.retries, "timeouts must drive backoff retries");
    assert!(parked > 0, "some churned registrations must straddle the cut");
    println!(
        "\nphase 2 — partition ({} members severed, {} lookups, {} re-registrations):",
        severed.len(),
        lookups / 4,
        churns,
    );
    println!(
        "  {} timeouts -> {} retries; {} lookups failed over to a reachable member",
        split.timeouts - cut_from.timeouts,
        split.retries - cut_from.retries,
        diverged,
    );
    println!("  {parked} registrations deferred (owner across the cut)");

    // ── Phase 3: heal ────────────────────────────────────────────────────
    let flushed = routed.heal(routed.now(), &link);
    routed.run_to_quiescence(&link);
    assert!(routed.is_quiescent(), "heal must drain to quiescence");
    assert_eq!(flushed as u64, parked, "heal flushes exactly the deferred registrations");

    // Reconvergence: the routed catalog earned, over the wire and through a
    // partition, exactly the state the omniscient twin holds.
    let routed_ring: Vec<(RingKey, u32)> = routed.catalog().ring().iter().collect();
    let omni_ring: Vec<(RingKey, u32)> = omni.ring().iter().collect();
    assert_eq!(
        routed_ring, omni_ring,
        "post-heal membership must be bit-identical to the omniscient twin"
    );
    for v in 0..n as u32 {
        assert_eq!(routed.catalog().registered_key(v), omni.registered_key(v));
    }
    for _ in 0..lookups / 4 {
        let origin = rng.gen_range(0..n as u32);
        let target = random_coord(&mut rng);
        let truth = omni.lookup_closest_traced(&target).expect("populated").member;
        let res = routed.lookup_quiescent(origin, &target, routed.now(), &link).expect("populated");
        assert_eq!(res.member, truth, "post-heal answers must equal the omniscient one");
    }
    let healed = routed.stats();
    println!("\nphase 3 — heal:");
    println!(
        "  {flushed} deferred registrations flushed ({} arrived stale and lost last-writer-wins)",
        healed.stale_rejected,
    );
    println!(
        "  ring order, registered keys, and {} fresh lookups all bit-identical to the \
         omniscient twin ✓",
        lookups / 4,
    );
    println!("\ntotals: {healed}");
}
