//! Planet scale: a 100,000-node overlay brought up as a **deployment wave**
//! with churn, jitter, and re-optimization — the regime the paper claims
//! cost spaces for ("hundreds or thousands of physical node choices",
//! §2.2), pushed two orders of magnitude past the paper's 600-node world.
//!
//! Four scaling mechanisms compose to make the run tractable:
//!
//! * **Lazy latency backend with row repair** — ground-truth shortest-path
//!   rows are computed on demand, and when jitter rescales underlay edges
//!   each resident row is *repaired in place* (dynamic SSSP over the
//!   affected region) instead of dropped and recomputed; a steady tick
//!   touches only the vertices whose distances actually changed, never the
//!   `O(n²)` matrix.
//! * **Landmark Vivaldi with join-time placement** — the embedding warm-up
//!   samples against `k` frozen landmarks instead of gossiping all-pairs,
//!   so only `k` Dijkstra rows are ever demanded during bring-up; every
//!   wave arrival embeds itself against those landmarks at join time, so
//!   no coordinate is computed before its node exists.
//! * **Deployment wave + B-tree ring** — membership starts from an initial
//!   subset and grows on a per-tick join budget; every arrival, coordinate
//!   re-registration, and failure is one `O(log n)` B-tree ring update in
//!   the runtime's Hilbert-DHT catalog.
//! * **Parallel tick loop** — per-source row computation and per-point
//!   scalar refresh shard across a deterministic threadpool
//!   (`RuntimeConfig::threads`, default all cores); the reduction order is
//!   pinned so a parallel run is *bit-identical* to a serial one, which
//!   this example asserts by running the same tier twice.
//!
//! A final **routed control-plane pass** re-runs a tier under
//! `MapperBackend::Routed` (a dedicated ~10k-node tier in the full run):
//! catalog lookups and registrations travel as messages over the simulated
//! underlay, the run must stay bit-identical to the omniscient backend,
//! and the per-query *experienced* latency distribution (p50/p99 ms, hop
//! histogram, messages) is reported.
//!
//! ```sh
//! cargo run --release --example planet_scale            # full 100,000 nodes
//! SBON_SMOKE=1 cargo run --release --example planet_scale     # CI-sized
//! SBON_SMOKE_XL=1 cargo run --release --example planet_scale  # reduced-scale
//!                                           # 100k-tier shape, parallel-vs-serial
//! ```

// Example: wall-clock progress reporting only, never control-plane input.
#![allow(clippy::disallowed_methods)]

use std::path::PathBuf;
use std::time::Instant;

use rand::seq::SliceRandom;

use sbon::core::reopt::ReoptPolicy;
use sbon::dht::ProtoConfig;
use sbon::netsim::dijkstra::single_source;
use sbon::netsim::graph::NodeId;
use sbon::netsim::rng::derive_rng;
use sbon::overlay::{
    DeploymentModel, JitterModel, LatencyBackend, MapperBackend, ObsConfig, OverlayRuntime,
    RunReport, RuntimeConfig, TraceSpec,
};
use sbon::prelude::*;

/// One scale point of the deployment-wave experiment.
struct Tier {
    label: &'static str,
    topo: TransitStubConfig,
    horizon_ms: f64,
    queries: usize,
    landmarks: usize,
    initial: usize,
    joins_per_tick: usize,
    jitter_edges: usize,
}

impl Tier {
    /// The full 100k-node / ~2M-edge tier: an 8×8 backbone homing 512 stub
    /// domains of ~195 nodes each. 30 ticks; the wave admits ~3,300
    /// nodes/tick so the whole membership is live before the horizon.
    fn planet() -> Self {
        Tier {
            label: "planet (100k nodes)",
            topo: TransitStubConfig {
                transit_domains: 8,
                transit_nodes_per_domain: 8,
                stub_domains_per_transit_node: 8,
                stub_nodes_per_domain: 195,
                ..Default::default()
            },
            horizon_ms: 30_000.0,
            queries: 8,
            landmarks: 64,
            initial: 2_000,
            joins_per_tick: 3_300,
            jitter_edges: 2_000,
        }
    }

    /// The same tier shape (backbone, wave, landmarks, jitter, lazy repair)
    /// at ~3k nodes — the `SBON_SMOKE_XL=1` equivalence smoke.
    fn planet_reduced() -> Self {
        Tier {
            label: "planet-reduced (~3k nodes, 100k-tier shape)",
            topo: TransitStubConfig {
                transit_domains: 8,
                transit_nodes_per_domain: 8,
                stub_domains_per_transit_node: 8,
                stub_nodes_per_domain: 6,
                ..Default::default()
            },
            horizon_ms: 30_000.0,
            queries: 4,
            landmarks: 16,
            initial: 500,
            joins_per_tick: 90,
            jitter_edges: 60,
        }
    }

    /// The ~10k-node tier the routed control-plane pass runs end-to-end:
    /// big enough that lookup paths take real hops, small enough to run
    /// twice (omniscient + routed) alongside the 100k tier.
    fn routed_10k() -> Self {
        Tier {
            label: "routed (~10k nodes)",
            topo: TransitStubConfig {
                transit_domains: 8,
                transit_nodes_per_domain: 8,
                stub_domains_per_transit_node: 8,
                stub_nodes_per_domain: 19,
                ..Default::default()
            },
            horizon_ms: 30_000.0,
            queries: 8,
            landmarks: 64,
            initial: 2_000,
            joins_per_tick: 300,
            jitter_edges: 200,
        }
    }

    /// The `SBON_SMOKE=1` CI tier.
    fn smoke() -> Self {
        Tier {
            label: "smoke (300 nodes)",
            topo: TransitStubConfig::with_total_nodes(300),
            horizon_ms: 10_000.0,
            queries: 4,
            landmarks: 16,
            initial: 100,
            joins_per_tick: 40,
            jitter_edges: 40,
        }
    }

    fn config(
        &self,
        threads: usize,
        incremental: bool,
        backend: MapperBackend,
        obs: ObsConfig,
    ) -> RuntimeConfig {
        RuntimeConfig::builder()
            .obs(obs)
            .mapper_backend(backend)
            .tick_ms(1_000.0)
            .horizon_ms(self.horizon_ms)
            .reopt_interval_ms(5_000.0)
            .full_reopt_interval_ms(15_000.0)
            .policy(ReoptPolicy { migration_threshold: 0.05, replacement_threshold: 0.15 })
            // Sparse load reports: each tick a fixed budget of nodes (not a
            // fixed fraction of n) reports fresh load, so control-plane
            // maintenance cost tracks churn, not overlay size.
            .churn(ChurnProcess::SparseWalk { nodes_per_tick: 64, std_dev: 0.1 })
            // Edge-granular jitter: congestion on a link perturbs every
            // path crossing it; resident rows are repaired, not dropped.
            .latency_jitter(JitterModel { edges_per_tick: self.jitter_edges, ..Default::default() })
            .latency_backend(LatencyBackend::Lazy)
            // Landmark embedding: bring-up demands `landmarks` Dijkstra
            // rows, not n; wave joiners place themselves against the
            // frozen landmarks as they arrive.
            .vivaldi(VivaldiConfig { landmarks: Some(self.landmarks), ..Default::default() })
            .deployment(DeploymentModel::Wave {
                initial: self.initial,
                joins_per_tick: self.joins_per_tick,
            })
            .threads(threads)
            // Dirty-driven re-optimization (the default); `false` restores
            // the evaluate-everything scan for the equivalence smoke.
            .incremental_reopt(incremental)
            .build()
    }
}

/// Builds the runtime, deploys the tier's query set, and runs to the
/// horizon. Deterministic in `seed` (and, by the parallel-tick contract,
/// in `threads`).
#[allow(clippy::too_many_arguments)] // flat knob list keeps the call sites greppable
fn run_tier(
    tier: &Tier,
    topo: &Topology,
    seed: u64,
    threads: usize,
    incremental: bool,
    backend: MapperBackend,
    chatty: bool,
    obs: ObsConfig,
) -> RunReport {
    let n = topo.num_nodes();
    let start = Instant::now();
    let mut rt = OverlayRuntime::new(topo, seed, tier.config(threads, incremental, backend, obs));
    if chatty {
        let warmup = rt.lazy_latency_stats().expect("lazy backend");
        println!(
            "  built in {:.2} s — {} Dijkstra rows computed for the embedding (full gossip would \
             need {}), {} resident; {} of {} nodes registered",
            start.elapsed().as_secs_f64(),
            warmup.rows_computed,
            n,
            warmup.rows_cached,
            rt.arrived_count(),
            n
        );
    }

    // Pin queries on hosts that are present from tick 0.
    let hosts: Vec<NodeId> =
        topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
    let mut rng = derive_rng(seed, 0x9a7e);
    let start = Instant::now();
    for q in 0..tier.queries {
        let mut picked = hosts.clone();
        picked.shuffle(&mut rng);
        let query = QuerySpec::join_star(&picked[..4], picked[4], 10.0, 0.02);
        rt.deploy(query).unwrap_or_else(|| panic!("query {q} deploys"));
    }
    if chatty {
        println!(
            "  deployed {} join circuits in {:.2} s",
            tier.queries,
            start.elapsed().as_secs_f64()
        );
    }

    let start = Instant::now();
    let report = rt.run();
    let t_run = start.elapsed().as_secs_f64();
    let ticks = report.samples.len();
    if !chatty {
        return report;
    }
    let stats = rt.lazy_latency_stats().expect("lazy backend");

    println!("\ndeployment-wave run:");
    println!(
        "  {} ticks in {:.2} s ({:.1} ms/tick wall); overlay grew {} -> {} nodes",
        ticks,
        t_run,
        1e3 * t_run / ticks as f64,
        tier.initial,
        rt.arrived_count()
    );
    println!(
        "  usage {:.0} -> {:.0}, {} migrations, {} replacements",
        report.samples.first().map_or(0.0, |s| s.network_usage),
        report.samples.last().map_or(0.0, |s| s.network_usage),
        report.migrations,
        report.replacements
    );
    println!(
        "  latency rows: {} computed total, {} resident ({:.2} MiB)",
        stats.rows_computed,
        stats.rows_cached,
        (stats.rows_cached * n * 8) as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  jitter absorption: {} row repairs settled {} vertices ({:.0} per repair; a \
         recompute would settle {} each), {} repairs escalated to full rebuilds",
        stats.rows_repaired,
        stats.vertices_settled,
        stats.vertices_settled as f64 / stats.rows_repaired.max(1) as f64,
        n,
        stats.rows_rebuilt,
    );

    // ── Per-tick control-plane breakdown ─────────────────────────────────
    // Every counter below lives in the runtime's metrics registry; the
    // stats structs are read-only views that print themselves.
    println!("\n[{} mapper]", rt.mapper_name());
    print!("{}", rt.control_plane_stats());
    if let Some(dht) = rt.dht_stats() {
        println!(
            "  catalog traffic: {} lookups, {} routed hops ({:.1} hops/lookup ~ log₂ n = {:.1})",
            dht.lookups,
            dht.hops,
            dht.hops as f64 / dht.lookups.max(1) as f64,
            (n as f64).log2()
        );
    }
    if let Some(rs) = rt.routed_stats() {
        // The message-passing control plane: the same lookups and
        // registrations, but *experienced* over the live underlay —
        // per-query latency in simulated milliseconds, not a hop counter.
        println!("  experienced: {rs}");
        let hist: Vec<String> = rs
            .hop_histogram()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(h, &c)| format!("{h}:{c}"))
            .collect();
        println!("  lookup hop histogram (hops:count): {}", hist.join(" "));
    }
    if let Some(emitted) = rt.trace_events_emitted() {
        println!("  trace: {emitted} events emitted");
    }
    report
}

fn main() {
    let smoke = std::env::var_os("SBON_SMOKE").is_some_and(|v| v == "1");
    let smoke_xl = std::env::var_os("SBON_SMOKE_XL").is_some_and(|v| v == "1");
    let tier = if smoke_xl {
        Tier::planet_reduced()
    } else if smoke {
        Tier::smoke()
    } else {
        Tier::planet()
    };
    let seed = 100_000;

    println!("tier: {}", tier.label);
    println!("generating the transit-stub underlay...");
    let start = Instant::now();
    let topo = transit_stub::generate(&tier.topo, seed);
    let n = topo.num_nodes();
    let m = topo.graph.num_edges();
    println!(
        "  {} nodes, {} edges, {} stub hosts  ({:.2} s)",
        n,
        m,
        topo.host_candidates().len(),
        start.elapsed().as_secs_f64()
    );

    // ── Deployment-wave run: parallel tick loop ──────────────────────────
    // Default tiers use the multi-threaded default (threads: 0 = all
    // cores). The XL smoke pins threads: 8 so the pool is exercised even
    // on single-core CI, where "auto" would degenerate to serial.
    let parallel_threads = if smoke_xl { 8 } else { 0 };
    println!(
        "\nbuilding runtime (landmark Vivaldi: {} of {n} rows; wave: {} initial nodes, \
         {} joins/tick; threads: {})...",
        tier.landmarks,
        tier.initial,
        tier.joins_per_tick,
        if parallel_threads == 0 { "auto".to_string() } else { parallel_threads.to_string() }
    );
    // SBON_TRACE=<path>: record this run's control-plane spans as JSONL.
    // The determinism pin below still holds — the serial re-run goes
    // untraced, so `assert_eq!` doubles as a live bit-invisibility check.
    let obs = match std::env::var_os("SBON_TRACE") {
        Some(path) => ObsConfig {
            trace: Some(TraceSpec::jsonl(seed, PathBuf::from(&path))),
            flight_capacity: 256,
        },
        None => ObsConfig::disabled(),
    };
    let traced = obs.trace.is_some();
    let report =
        run_tier(&tier, &topo, seed, parallel_threads, true, MapperBackend::default(), true, obs);
    if traced {
        println!("  wrote JSONL span trace to {:?}", std::env::var_os("SBON_TRACE").unwrap());
    }

    // ── Determinism pin: the serial run must be bit-identical ────────────
    // The parallel-tick contract: sharding per-source row computation and
    // per-point scalar refresh across a threadpool changes wall time only.
    // `RunReport` equality is bit-for-bit over every sample and counter.
    println!("\nre-running the tier serially (threads: 1) to pin determinism...");
    let start = Instant::now();
    let serial = run_tier(
        &tier,
        &topo,
        seed,
        1,
        true,
        MapperBackend::default(),
        false,
        ObsConfig::disabled(),
    );
    println!("  serial run finished in {:.2} s", start.elapsed().as_secs_f64());
    assert_eq!(
        report, serial,
        "parallel and serial runs of the same tier must produce bit-identical RunReports"
    );
    println!("  parallel ≡ serial: RunReports are bit-identical ✓");

    // ── Incremental-vs-full equivalence pin (XL smoke) ───────────────────
    // Dirty-driven re-optimization skips only circuits whose last no-op
    // evaluation provably had unchanged inputs, so the run must be
    // bit-identical to the evaluate-everything scan. Asserted on the
    // reduced 100k-tier shape; the full tier relies on the same contract.
    if smoke_xl {
        println!("\nre-running with incremental re-opt disabled (full scan) to pin equivalence...");
        let start = Instant::now();
        let full_scan = run_tier(
            &tier,
            &topo,
            seed,
            parallel_threads,
            false,
            MapperBackend::default(),
            false,
            ObsConfig::disabled(),
        );
        println!("  full-scan run finished in {:.2} s", start.elapsed().as_secs_f64());
        assert_eq!(
            report, full_scan,
            "dirty-driven and evaluate-everything re-optimization must produce bit-identical \
             RunReports"
        );
        println!("  incremental ≡ full scan: RunReports are bit-identical ✓");
    }

    // ── Routed control-plane pass: the message-passing backend ───────────
    // `MapperBackend::Routed` answers placements from the same catalog
    // state as the omniscient Dht backend — the RunReports must be
    // bit-identical — but replays every lookup and registration as routed
    // messages over the live underlay, so the control plane's cost is
    // *experienced* (per-query milliseconds of link delay), not estimated.
    // Smoke modes reuse their tier; the full run gets a dedicated ~10k-node
    // tier so lookup paths take real hops without doubling the 100k cost.
    let routed_tier;
    let routed_topo;
    let (tier_r, topo_r) = if smoke || smoke_xl {
        (&tier, &topo)
    } else {
        routed_tier = Tier::routed_10k();
        println!("\ngenerating the ~10k-node underlay for the routed control-plane pass...");
        routed_topo = transit_stub::generate(&routed_tier.topo, seed);
        (&routed_tier, &routed_topo)
    };
    println!(
        "\nrouted control-plane pass ({}, {} nodes): omniscient vs message-passing backend...",
        tier_r.label,
        topo_r.num_nodes()
    );
    let start = Instant::now();
    let omniscient = run_tier(
        tier_r,
        topo_r,
        seed,
        parallel_threads,
        true,
        MapperBackend::default(),
        false,
        ObsConfig::disabled(),
    );
    let routed_backend =
        MapperBackend::Routed { bits: 12, scan_width: 8, proto: ProtoConfig::default() };
    let routed = run_tier(
        tier_r,
        topo_r,
        seed,
        parallel_threads,
        true,
        routed_backend,
        true,
        ObsConfig::disabled(),
    );
    println!("  routed pass finished in {:.2} s", start.elapsed().as_secs_f64());
    assert_eq!(
        omniscient, routed,
        "routed and omniscient mapper backends must produce bit-identical RunReports"
    );
    println!("  routed ≡ omniscient: RunReports are bit-identical ✓");

    // ── The dense baseline at the same scale (extrapolated) ──────────────
    // A full all-pairs precompute at this scale runs for hours; time a few
    // sampled rows and extrapolate instead of stalling the example.
    let sample_rows = 8.min(n);
    println!("\ndense baseline at {n} nodes (extrapolated from {sample_rows} sampled rows):");
    let start = Instant::now();
    let mut acc = 0.0f64;
    for src in 0..sample_rows {
        acc += single_source(&topo.graph, NodeId(src as u32))[n - 1];
    }
    let t_row = start.elapsed().as_secs_f64() / sample_rows as f64;
    let t_allpairs = t_row * n as f64;
    let dense_mib = (2 * n * n * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "  all-pairs precompute ≈ {:.1} s; matrix + jitter-band copy: {:.0} MiB resident forever",
        t_allpairs, dense_mib
    );
    println!(
        "  keeping it truthful under edge churn: {:.1} s × {} ticks ≈ {:.0} s of recompute\n  \
         (the lazy deployment-wave run above did the whole simulation while repairing rows \
         in place)",
        t_allpairs,
        report.samples.len(),
        t_allpairs * report.samples.len() as f64,
    );
    let _ = acc;

    println!(
        "\nthe lazy backend's steady state is O(touched rows × n); jitter costs O(affected \
         region) per resident row per tick (see `sbon_netsim::lazy`), and the landmark warm-up \
         bounded the bring-up peak at {} rows. membership maintenance is ring-size-insensitive: \
         `bench_control_plane` measures B-tree join/leave flat from 2k to 100k members.",
        tier.landmarks
    );
}
