//! Planet scale: a 10,000-node overlay brought up as a **deployment wave**
//! with churn, jitter, and re-optimization — the regime the paper claims
//! cost spaces for ("hundreds or thousands of physical node choices",
//! §2.2), pushed an order of magnitude past the previous 2k envelope.
//!
//! Three scaling mechanisms compose to make the run tractable:
//!
//! * **Lazy latency backend** — ground-truth shortest-path rows are
//!   computed on demand and invalidated per dirty source as jitter rescales
//!   underlay edges; a steady tick touches only the rows the optimizer
//!   actually reads, never the `O(n²)` matrix.
//! * **Landmark Vivaldi** — the embedding warm-up samples against `k`
//!   landmarks instead of gossiping all-pairs, so only `k` Dijkstra rows
//!   are ever demanded during bring-up (vs one per node).
//! * **Deployment wave + B-tree ring** — membership starts from an initial
//!   subset and grows on a per-tick join budget; every arrival, coordinate
//!   re-registration, and failure is one `O(log n)` B-tree ring update in
//!   the runtime's Hilbert-DHT catalog (the seed's sorted-`Vec` ring paid
//!   an `O(n)` memmove per update — `bench_control_plane` has the 2k→100k
//!   comparison).
//!
//! The run reports the per-tick control-plane breakdown — wave joins,
//! coordinate maintenance, re-optimization, latency reads — separately, so
//! every half of the scaling story is visible in one run.
//!
//! ```sh
//! cargo run --release --example planet_scale          # full 10,000 nodes
//! SBON_SMOKE=1 cargo run --release --example planet_scale   # CI-sized
//! ```

use std::time::Instant;

use rand::seq::SliceRandom;

use sbon::core::reopt::ReoptPolicy;
use sbon::netsim::dijkstra::single_source;
use sbon::netsim::graph::NodeId;
use sbon::netsim::rng::derive_rng;
use sbon::overlay::{
    DeploymentModel, LatencyBackend, LatencyJitter, OverlayRuntime, RuntimeConfig,
};
use sbon::prelude::*;

fn main() {
    let smoke = std::env::var_os("SBON_SMOKE").is_some_and(|v| v == "1");
    let nodes = if smoke { 300 } else { 10_000 };
    let horizon_ms = if smoke { 10_000.0 } else { 30_000.0 };
    let queries = if smoke { 4 } else { 8 };
    let landmarks = if smoke { 16 } else { 64 };
    let initial = if smoke { 100 } else { 2_000 };
    let joins_per_tick = if smoke { 40 } else { 400 };
    let seed = 10_000;

    println!("generating a {nodes}-node transit-stub underlay...");
    let start = Instant::now();
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(nodes), seed);
    let n = topo.num_nodes();
    let m = topo.graph.num_edges();
    println!(
        "  {} nodes, {} edges, {} stub hosts  ({:.2} s)",
        n,
        m,
        topo.host_candidates().len(),
        start.elapsed().as_secs_f64()
    );

    // ── Deployment-wave run: lazy rows + landmark Vivaldi + B-tree ring ──
    let config = RuntimeConfig {
        tick_ms: 1_000.0,
        horizon_ms,
        reopt_interval_ms: Some(5_000.0),
        full_reopt_interval_ms: Some(15_000.0),
        policy: ReoptPolicy { migration_threshold: 0.05, replacement_threshold: 0.15 },
        // Sparse load reports: each tick a fixed budget of nodes (not a
        // fixed fraction of n) reports fresh load, so control-plane
        // maintenance cost tracks churn, not overlay size.
        churn: ChurnProcess::SparseWalk { nodes_per_tick: 64, std_dev: 0.1 },
        // Edge-granular jitter under the lazy backend: congestion on a link
        // perturbs every path crossing it.
        latency_jitter: Some(LatencyJitter {
            pairs_per_tick: m / 16,
            factor_range: (0.7, 1.45),
            band: (0.5, 3.0),
        }),
        latency_backend: LatencyBackend::Lazy,
        // Landmark embedding: the warm-up demands `landmarks` Dijkstra
        // rows, not n.
        vivaldi: VivaldiConfig { landmarks: Some(landmarks), ..Default::default() },
        // The wave: `initial` nodes up front, the rest admitted on a
        // per-tick budget through the mapper's add_node contract.
        deployment: DeploymentModel::Wave { initial, joins_per_tick },
        ..Default::default()
    };

    println!(
        "\nbuilding runtime (landmark Vivaldi: {landmarks} of {n} rows; wave: {initial} initial \
         nodes, {joins_per_tick} joins/tick)..."
    );
    let start = Instant::now();
    let mut rt = OverlayRuntime::new(&topo, seed, config);
    let t_build = start.elapsed().as_secs_f64();
    let warmup = rt.lazy_latency_stats().expect("lazy backend");
    println!(
        "  built in {:.2} s — {} Dijkstra rows computed for the embedding (full gossip would \
         need {}), {} resident after eviction; {} of {} nodes registered",
        t_build,
        warmup.rows_computed,
        n,
        warmup.rows_cached,
        rt.arrived_count(),
        n
    );

    // Pin queries on hosts that are present from tick 0.
    let hosts: Vec<NodeId> =
        topo.host_candidates().into_iter().filter(|&h| rt.is_arrived(h)).collect();
    let mut rng = derive_rng(seed, 0x9a7e);
    let start = Instant::now();
    for q in 0..queries {
        let mut picked = hosts.clone();
        picked.shuffle(&mut rng);
        let query = QuerySpec::join_star(&picked[..4], picked[4], 10.0, 0.02);
        rt.deploy(query).unwrap_or_else(|| panic!("query {q} deploys"));
    }
    println!("  deployed {} join circuits in {:.2} s", queries, start.elapsed().as_secs_f64());

    let start = Instant::now();
    let report = rt.run();
    let t_run = start.elapsed().as_secs_f64();
    let ticks = report.samples.len();
    let stats = rt.lazy_latency_stats().expect("lazy backend");

    println!("\ndeployment-wave run:");
    println!(
        "  {} ticks in {:.2} s ({:.1} ms/tick wall); overlay grew {} -> {} nodes",
        ticks,
        t_run,
        1e3 * t_run / ticks as f64,
        initial,
        rt.arrived_count()
    );
    println!(
        "  usage {:.0} -> {:.0}, {} migrations, {} replacements",
        report.samples.first().map_or(0.0, |s| s.network_usage),
        report.samples.last().map_or(0.0, |s| s.network_usage),
        report.migrations,
        report.replacements
    );
    println!(
        "  latency rows: {} computed total, {} resident ({:.2} MiB), {} invalidated by jitter",
        stats.rows_computed,
        stats.rows_cached,
        (stats.rows_cached * n * 8) as f64 / (1024.0 * 1024.0),
        stats.rows_invalidated
    );

    // ── Per-tick control-plane breakdown ─────────────────────────────────
    let cp = rt.control_plane_stats();
    println!("\ncontrol plane ({} mapper):", rt.mapper_name());
    println!(
        "  wave joins: {} nodes admitted over {} ticks in {:.2} ms total \
         ({:.1} µs/join — one O(log n) catalog registration each)",
        cp.nodes_joined,
        cp.ticks,
        cp.join_ns as f64 / 1e6,
        cp.join_ns as f64 / 1e3 / cp.nodes_joined.max(1) as f64,
    );
    println!(
        "  coordinate maintenance: {:.2} ms total ({:.0} µs/tick) — {} dirty reports, \
         {} point updates ({:.1}/tick at {n} nodes)",
        cp.refresh_ns as f64 / 1e6,
        cp.refresh_ns as f64 / 1e3 / cp.ticks.max(1) as f64,
        cp.dirty_nodes,
        cp.points_updated,
        cp.points_updated as f64 / cp.ticks.max(1) as f64,
    );
    println!(
        "  re-optimization + mapping: {:.2} ms total over the run's re-opt/rewrite events",
        cp.reopt_ns as f64 / 1e6
    );
    println!(
        "  latency-provider reads (usage accounting): {:.2} ms total",
        cp.usage_ns as f64 / 1e6
    );
    if let Some(dht) = rt.dht_stats() {
        println!(
            "  catalog traffic: {} lookups, {} routed hops ({:.1} hops/lookup ~ log₂ n = {:.1})",
            dht.lookups,
            dht.hops,
            dht.hops as f64 / dht.lookups.max(1) as f64,
            (n as f64).log2()
        );
    }

    // ── The dense baseline at the same scale (extrapolated) ──────────────
    // A full all-pairs precompute at 10k nodes runs for minutes; time a
    // 32-row sample and extrapolate instead of stalling the example.
    println!("\ndense baseline at {n} nodes (extrapolated from 32 sampled rows):");
    let sample_rows = 32.min(n);
    let start = Instant::now();
    let mut acc = 0.0f64;
    for src in 0..sample_rows {
        acc += single_source(&topo.graph, NodeId(src as u32))[n - 1];
    }
    let t_row = start.elapsed().as_secs_f64() / sample_rows as f64;
    let t_allpairs = t_row * n as f64;
    let dense_mib = (2 * n * n * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "  all-pairs precompute ≈ {:.1} s; matrix + jitter-band copy: {:.0} MiB resident forever",
        t_allpairs, dense_mib
    );
    println!(
        "  keeping it truthful under edge churn: {:.1} s × {} ticks ≈ {:.0} s of recompute\n  \
         (the lazy deployment-wave run above did the whole simulation in {:.2} s)",
        t_allpairs,
        ticks,
        t_allpairs * ticks as f64,
        t_run
    );
    let _ = acc;

    // ── Where this is headed ─────────────────────────────────────────────
    println!("\ndense-state projection (2 copies × n² × 8 B):");
    for scale in [10_000usize, 20_000, 50_000, 100_000] {
        let gib = (2 * scale * scale * 8) as f64 / (1024.0 * 1024.0 * 1024.0);
        println!("  {:>6} nodes: {:>8.2} GiB", scale, gib);
    }
    println!(
        "the lazy backend's steady state is O(touched rows × n): at {} nodes this run held {} \
         rows ({:.2} MiB), and the landmark warm-up bounded the bring-up peak at {} rows.\n\
         membership maintenance itself is ring-size-insensitive: `bench_control_plane` measures \
         B-tree join/leave flat from 2k to 100k members.",
        n,
        stats.rows_cached,
        (stats.rows_cached * n * 8) as f64 / (1024.0 * 1024.0),
        landmarks
    );
}
