//! Planet scale: a 2,000-node overlay with churn, jitter, and
//! re-optimization — the regime the paper claims cost spaces for
//! ("hundreds or thousands of physical node choices", §2.2).
//!
//! The run uses the **lazy latency backend**: ground-truth latency rows are
//! computed on demand and invalidated per dirty source as jitter rescales
//! underlay edges, so a steady tick touches only the rows the optimizer
//! actually reads. The dense all-pairs baseline at the same scale is also
//! measured: its matrix alone is tens of MiB, and keeping it truthful under
//! *edge* churn would cost a full all-pairs recompute every tick.
//!
//! The **control plane** is delta-driven too: load churn arrives as sparse
//! per-tick reports ([`ChurnProcess::SparseWalk`]), only the touched cost
//! points are recomputed and re-registered with the runtime's Hilbert-DHT
//! mapper, and every mapping (deployment, re-optimization, evacuation) is
//! an `O(log n)` routed lookup instead of an `O(n)` oracle scan. The run
//! reports coordinate-maintenance and re-optimization wall time separately
//! from latency-provider time, so both halves of the scaling story are
//! visible in one run.
//!
//! ```sh
//! cargo run --release --example planet_scale          # full 2,000 nodes
//! SBON_SMOKE=1 cargo run --release --example planet_scale   # CI-sized
//! ```

use std::time::Instant;

use rand::seq::SliceRandom;

use sbon::core::reopt::ReoptPolicy;
use sbon::netsim::dijkstra::all_pairs_latency;
use sbon::netsim::rng::derive_rng;
use sbon::overlay::{LatencyBackend, LatencyJitter, OverlayRuntime, RuntimeConfig};
use sbon::prelude::*;

fn main() {
    let smoke = std::env::var_os("SBON_SMOKE").is_some_and(|v| v == "1");
    let nodes = if smoke { 300 } else { 2_000 };
    let horizon_ms = if smoke { 10_000.0 } else { 30_000.0 };
    let queries = if smoke { 4 } else { 8 };
    let seed = 2_000;

    println!("generating a {nodes}-node transit-stub underlay...");
    let start = Instant::now();
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(nodes), seed);
    let n = topo.num_nodes();
    let m = topo.graph.num_edges();
    println!(
        "  {} nodes, {} edges, {} stub hosts  ({:.2} s)",
        n,
        m,
        topo.host_candidates().len(),
        start.elapsed().as_secs_f64()
    );

    // ── Lazy-backend run: jitter + local & full re-optimization ──────────
    let config = RuntimeConfig {
        tick_ms: 1_000.0,
        horizon_ms,
        reopt_interval_ms: Some(5_000.0),
        full_reopt_interval_ms: Some(15_000.0),
        policy: ReoptPolicy { migration_threshold: 0.05, replacement_threshold: 0.15 },
        // Sparse load reports: each tick a fixed budget of nodes (not a
        // fixed fraction of n) reports fresh load, so control-plane
        // maintenance cost tracks churn, not overlay size.
        churn: ChurnProcess::SparseWalk { nodes_per_tick: 64, std_dev: 0.1 },
        // Edge-granular jitter under the lazy backend: congestion on a link
        // perturbs every path crossing it.
        latency_jitter: Some(LatencyJitter {
            pairs_per_tick: m / 16,
            factor_range: (0.7, 1.45),
            band: (0.5, 3.0),
        }),
        latency_backend: LatencyBackend::Lazy,
        ..Default::default()
    };

    println!("\nbuilding runtime (lazy backend: Vivaldi warm-up rows are evicted)...");
    let start = Instant::now();
    let mut rt = OverlayRuntime::new(&topo, seed, config);
    let t_build = start.elapsed().as_secs_f64();
    let warmup = rt.lazy_latency_stats().expect("lazy backend");
    println!(
        "  built in {:.2} s — {} rows computed for the embedding, {} resident after eviction",
        t_build, warmup.rows_computed, warmup.rows_cached
    );

    let hosts = topo.host_candidates();
    let mut rng = derive_rng(seed, 0x9a7e);
    let start = Instant::now();
    for q in 0..queries {
        let mut picked = hosts.clone();
        picked.shuffle(&mut rng);
        let query = QuerySpec::join_star(&picked[..4], picked[4], 10.0, 0.02);
        rt.deploy(query).unwrap_or_else(|| panic!("query {q} deploys"));
    }
    println!("  deployed {} join circuits in {:.2} s", queries, start.elapsed().as_secs_f64());

    let start = Instant::now();
    let report = rt.run();
    let t_run = start.elapsed().as_secs_f64();
    let ticks = report.samples.len();
    let stats = rt.lazy_latency_stats().expect("lazy backend");

    println!("\nlazy-backend run:");
    println!(
        "  {} ticks in {:.2} s ({:.1} ms/tick wall)",
        ticks,
        t_run,
        1e3 * t_run / ticks as f64
    );
    println!(
        "  usage {:.0} -> {:.0}, {} migrations, {} replacements",
        report.samples.first().map_or(0.0, |s| s.network_usage),
        report.samples.last().map_or(0.0, |s| s.network_usage),
        report.migrations,
        report.replacements
    );
    println!(
        "  latency rows: {} computed total, {} resident ({:.2} MiB), {} invalidated by jitter",
        stats.rows_computed,
        stats.rows_cached,
        (stats.rows_cached * n * 8) as f64 / (1024.0 * 1024.0),
        stats.rows_invalidated
    );

    // ── Control-plane breakdown ──────────────────────────────────────────
    let cp = rt.control_plane_stats();
    println!("\ncontrol plane ({} mapper):", rt.mapper_name());
    println!(
        "  coordinate maintenance: {:.2} ms total ({:.0} µs/tick) — {} dirty reports, \
         {} point updates ({:.1}/tick at {n} nodes)",
        cp.refresh_ns as f64 / 1e6,
        cp.refresh_ns as f64 / 1e3 / cp.ticks.max(1) as f64,
        cp.dirty_nodes,
        cp.points_updated,
        cp.points_updated as f64 / cp.ticks.max(1) as f64,
    );
    println!(
        "  re-optimization + mapping: {:.2} ms total over the run's re-opt/rewrite events",
        cp.reopt_ns as f64 / 1e6
    );
    println!(
        "  latency-provider reads (usage accounting): {:.2} ms total",
        cp.usage_ns as f64 / 1e6
    );
    if let Some(dht) = rt.dht_stats() {
        println!(
            "  catalog traffic: {} lookups, {} routed hops ({:.1} hops/lookup ~ log₂ n = {:.1})",
            dht.lookups,
            dht.hops,
            dht.hops as f64 / dht.lookups.max(1) as f64,
            (n as f64).log2()
        );
    }

    // ── The dense baseline at the same scale ─────────────────────────────
    println!("\ndense baseline at {n} nodes:");
    let start = Instant::now();
    let dense = all_pairs_latency(&topo.graph);
    let t_allpairs = start.elapsed().as_secs_f64();
    let dense_mib = (2 * n * n * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "  all-pairs precompute: {:.2} s; matrix + jitter-band copy: {:.1} MiB resident forever",
        t_allpairs, dense_mib
    );
    // Under edge churn the dense ground truth goes stale every tick; the
    // only way to keep it truthful is a full recompute per tick.
    println!(
        "  keeping it truthful under edge churn: {:.2} s × {} ticks ≈ {:.1} s of recompute\n  \
         (the lazy run above did the whole simulation in {:.2} s)",
        t_allpairs,
        ticks,
        t_allpairs * ticks as f64,
        t_run
    );
    let _ = dense.mean_latency();

    // ── Where this is headed ─────────────────────────────────────────────
    println!("\ndense-state projection (2 copies × n² × 8 B):");
    for scale in [2_000usize, 5_000, 10_000, 20_000] {
        let gib = (2 * scale * scale * 8) as f64 / (1024.0 * 1024.0 * 1024.0);
        println!("  {:>6} nodes: {:>8.2} GiB", scale, gib);
    }
    println!(
        "the lazy backend's steady state is O(touched rows × n): at {} nodes this run \
         held {} rows ({:.2} MiB).\n(the Vivaldi warm-up transiently peaks at one n×n \
         pass before eviction; set RuntimeConfig::lazy_row_cache to bound that too, \
         trading per-round row recompute.)",
        n,
        stats.rows_cached,
        (stats.rows_cached * n * 8) as f64 / (1024.0 * 1024.0)
    );
}
