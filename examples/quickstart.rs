//! Quickstart: build a network, a cost space, and optimize one query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sbon::prelude::*;

fn main() {
    // 1. A 200-node transit-stub network (the paper's topology family) and
    //    its ground-truth shortest-path latency.
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(200), 42);
    let latency = all_pairs_latency(&topo.graph);
    println!(
        "network: {} nodes ({} stub hosts), mean latency {:.1} ms",
        topo.num_nodes(),
        topo.host_candidates().len(),
        latency.mean_latency()
    );

    // 2. Vivaldi network coordinates (the vector dimensions) plus a
    //    squared-CPU-load scalar dimension: the paper's Figure-2 cost space.
    let embedding = VivaldiConfig::default().embed(&latency, 42);
    let mut rng = rng_from_seed(42);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.8 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    println!(
        "cost space '{}': {} dims ({} vector + {} scalar)",
        space.name,
        space.dims(),
        space.vector_dims(),
        space.dims() - space.vector_dims()
    );

    // 3. A 4-way join over pinned producers, consumer elsewhere.
    let hosts = topo.host_candidates();
    let query = QuerySpec::join_star(
        &[hosts[0], hosts[40], hosts[80], hosts[120]],
        hosts[160],
        10.0, // rate units/s per stream
        0.02, // pairwise join selectivity
    );

    // 4. Integrated optimization: all 15 bushy join trees are virtually
    //    placed (spring relaxation), physically mapped, and costed; the
    //    cheapest circuit wins.
    let optimizer = IntegratedOptimizer::new(OptimizerConfig::default());
    let placed = optimizer.optimize(&query, &space, &latency).expect("optimization succeeds");
    println!("\nchosen plan:      {}", placed.plan);
    println!("candidates tried: {}", placed.candidates_examined);
    println!(
        "network usage:    {:.1} (estimated {:.1})",
        placed.cost.network_usage, placed.estimated.network_usage
    );
    println!("worst path:       {:.1} ms", placed.cost.max_path_latency);

    // 5. Compare with the classic two-step optimizer.
    let two_step = TwoStepOptimizer::new(OptimizerConfig::default())
        .optimize(&query, &space, &latency)
        .expect("optimization succeeds");
    println!("\ntwo-step plan:    {}", two_step.plan);
    println!("two-step usage:   {:.1}", two_step.cost.network_usage);
    println!(
        "integrated saves: {:.1}%",
        100.0 * (1.0 - placed.cost.network_usage / two_step.cost.network_usage)
    );
}
