//! Volcano monitoring: the paper's motivating pinned-producer scenario.
//!
//! "Often an SBON is used to relay real-time data from a particular data
//! source ... live sensor readings from a volcano originate at a particular
//! volcano; one cannot move mountains." (Section 2, citing the Harvard
//! volcano sensor-network deployment [9].)
//!
//! Seismometer and infrasound streams originate in one stub domain (the
//! volcano's uplink); an observatory consumer lives far away. Filters
//! (station-side triggering) and a correlating join must be placed
//! in-network. We show where the optimizer puts them and what pushing the
//! filters to the sources is worth.
//!
//! ```sh
//! cargo run --release --example volcano_monitoring
//! ```

use sbon::netsim::topology::NodeRole;
use sbon::prelude::*;
use sbon::query::stream::StreamCatalog;

fn main() {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(300), 7);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, 7);
    let mut rng = rng_from_seed(7);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.5 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);

    // The "volcano": every sensor uplinks through one stub domain.
    let volcano_domain: Vec<NodeId> = topo
        .roles
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            NodeRole::Stub { domain, .. } if *domain == 3 => Some(NodeId(i as u32)),
            _ => None,
        })
        .collect();
    // The observatory: a stub node in a different part of the world.
    let observatory = *topo
        .host_candidates()
        .iter()
        .rev()
        .find(|n| !volcano_domain.contains(n))
        .expect("some node is far from the volcano");

    println!(
        "volcano stub domain: {} sensor uplink nodes; observatory at {}",
        volcano_domain.len(),
        observatory
    );

    // Streams: two seismometers and one infrasound microphone, high-rate.
    let mut streams = StreamCatalog::new();
    let seismo_a = streams.register("seismo-a", 50.0, volcano_domain[0]);
    let seismo_b = streams.register("seismo-b", 50.0, volcano_domain[1 % volcano_domain.len()]);
    let infra = streams.register("infrasound", 20.0, volcano_domain[2 % volcano_domain.len()]);
    let stats = StatsCatalog::from_streams(&streams, 0.01);

    let base = QuerySpec::new(streams, stats, vec![seismo_a, seismo_b, infra], observatory);

    // Variant 1: raw correlation (no source filtering).
    let optimizer = IntegratedOptimizer::new(OptimizerConfig::default());
    let raw = optimizer.optimize(&base, &space, &latency).expect("optimizes");

    // Variant 2: station-side event triggering — filters that pass 5% of
    // samples, attached above each seismometer.
    let filtered_query =
        base.clone().with_source_filter(seismo_a, 0.05).with_source_filter(seismo_b, 0.05);
    let filtered = optimizer.optimize(&filtered_query, &space, &latency).expect("optimizes");

    println!("\nraw correlation plan:      {}", raw.plan);
    println!(
        "  network usage {:.1}, worst path {:.1} ms",
        raw.cost.network_usage, raw.cost.max_path_latency
    );
    println!("triggered (σ=0.05) plan:   {}", filtered.plan);
    println!(
        "  network usage {:.1}, worst path {:.1} ms",
        filtered.cost.network_usage, filtered.cost.max_path_latency
    );
    println!(
        "\nstation-side triggering cuts network usage by {:.1}%",
        100.0 * (1.0 - filtered.cost.network_usage / raw.cost.network_usage)
    );

    // Where did the services land? Near the volcano: the optimizer keeps
    // high-rate links short by pushing operators toward the sources.
    let near = |n: NodeId| {
        volcano_domain.iter().map(|&v| latency.latency(n, v)).fold(f64::INFINITY, f64::min)
    };
    println!("\noperator hosts (distance to the volcano's stub domain):");
    for s in filtered.circuit.services() {
        if s.is_unpinned() {
            let host = filtered.placement.node_of(s.id);
            println!("  service {:?} -> {}  ({:.1} ms from the volcano)", s.id, host, near(host));
        }
    }
    let consumer_dist = near(observatory);
    println!("  (observatory itself is {consumer_dist:.1} ms away)");
}
