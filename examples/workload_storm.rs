//! Workload storm: a flash crowd of arriving and departing tenants over a
//! 2,048-node overlay with reuse-aware tenancy.
//!
//! The acceptance bar for the workload engine: sustain ≥ 1,000 query
//! arrivals + departures with reuse enabled, deterministic by seed, report
//! marginal-vs-standalone cost and reuse hits, and end with usage
//! accounting bit-identical to the pre-workload baseline (every shared
//! service's refcount drained to zero).
//!
//! ```sh
//! cargo run --release --example workload_storm          # full 2,048 nodes
//! SBON_SMOKE=1 cargo run --release --example workload_storm   # CI-sized
//! ```
//!
//! The smoke mode is the CI bench-smoke job's workload-scenario check: a
//! flash-crowd arrival burst plus departures over a 30-tick run, asserting
//! the active-query gauge returns to zero.

// Example: wall-clock progress reporting only, never control-plane input.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sbon::core::multiquery::ReuseScope;
use sbon::overlay::{LatencyBackend, RuntimeConfig};
use sbon::prelude::*;

fn main() {
    let smoke = std::env::var_os("SBON_SMOKE").is_some_and(|v| v == "1");
    let nodes = if smoke { 300 } else { 2_048 };
    let horizon_ms = if smoke { 30_000.0 } else { 120_000.0 };
    let seed = 2_048;

    let runtime = RuntimeConfig::builder()
        .horizon_ms(horizon_ms)
        .churn(ChurnProcess::SparseWalk { nodes_per_tick: 16, std_dev: 0.1 })
        // Demand-driven ground truth: a 2,048-node dense matrix would cost
        // 64 MiB (× 2 with the jitter reference) before the first arrival.
        .latency_backend(LatencyBackend::Lazy)
        .vivaldi(VivaldiConfig { landmarks: Some(32), ..Default::default() })
        .reuse(ReuseScope::Radius(60.0))
        .build();
    let scenario = Scenario {
        catalog: CatalogSpec { feeds: 16, rate: 10.0, zipf_exponent: 1.1, join_selectivity: 0.02 },
        workload: WorkloadSpec {
            // A breaking-news flash crowd in the middle third of the run on
            // top of steady base traffic.
            arrival: if smoke {
                ArrivalProcess::FlashCrowd {
                    base_per_sec: 0.5,
                    peak_per_sec: 4.0,
                    start_ms: 8_000.0,
                    end_ms: 16_000.0,
                }
            } else {
                ArrivalProcess::FlashCrowd {
                    base_per_sec: 8.0,
                    peak_per_sec: 24.0,
                    start_ms: 40_000.0,
                    end_ms: 70_000.0,
                }
            },
            duration: SessionDuration::Exponential {
                mean_ms: if smoke { 6_000.0 } else { 15_000.0 },
            },
            templates: vec![
                (QueryTemplate::PopularFeedJoin { ways: 2 }, 4.0),
                (QueryTemplate::PopularFeedJoin { ways: 3 }, 2.0),
                (QueryTemplate::FanInAggregate { ways: 3, ratio: 0.2 }, 1.0),
                (QueryTemplate::ChainFilter { filters: 2, selectivity: 0.3 }, 1.0),
            ],
            max_arrivals: None,
            drain_at_end: true,
        },
        ..Scenario::new("workload storm", nodes, seed, runtime)
    };

    println!(
        "driving a flash-crowd workload over a {nodes}-node overlay ({} ticks)...",
        (horizon_ms / 1_000.0) as usize
    );
    let start = Instant::now();
    let report = scenario.run();
    let wall = start.elapsed().as_secs_f64();
    println!();
    report.print_summary();
    println!(
        "\n{} arrivals + {} departures in {:.2} s wall ({:.1} lifecycle ops/s of wall time)",
        report.arrivals,
        report.departures,
        wall,
        (report.arrivals + report.departures) as f64 / wall
    );

    // The flash-crowd shape in the gauge.
    let peak_tick =
        report.run.samples.iter().max_by_key(|s| s.active_queries).expect("samples exist");
    println!(
        "flash crowd peaked at {} active queries (t={:.0} ms); final gauge {}",
        peak_tick.active_queries, peak_tick.time_ms, report.final_active
    );

    // ── Hard post-conditions (the CI smoke assertion set) ────────────────
    assert_eq!(report.final_active, 0, "active-query gauge must return to zero");
    assert!(report.drained_to_baseline(), "usage accounting must return to the baseline");
    assert!(report.reuse_hits > 0, "Zipf-overlapping tenants must produce reuse");
    assert!(report.marginal_usage < report.standalone_usage);
    if !smoke {
        assert!(
            report.arrivals >= 1_000 && report.departures >= 1_000,
            "acceptance: ≥ 1,000 arrivals + departures (got {} + {})",
            report.arrivals,
            report.departures
        );
    }
    println!("all workload post-conditions hold");
}
