//! In-tree, offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — with the same call-site
//! syntax as criterion 0.5, so swapping in the real crate later is a
//! manifest-only change.
//!
//! The measurement model is deliberately simple: each `iter` target is warmed
//! up, then timed in batches until a fixed wall-clock budget is reached, and
//! the mean ns/iter is printed. There is no statistical analysis, plotting,
//! or result persistence — CI only compiles benches (`cargo bench --no-run`),
//! and local runs just need a stable order-of-magnitude signal.

#![forbid(unsafe_code)]
// Timing shim: wall-clock measurement is this crate's entire purpose.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-target wall-clock measurement budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_target(id, f);
        self
    }
}

/// A named set of benchmarks sharing a prefix (mirrors criterion's groups).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim's budget-based sampling
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_target(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_target(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_owned() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly; the routine's return value is black-boxed so
    /// the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so each timed batch is ≫ timer overhead.
        let warm_start = Instant::now();
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
            if elapsed < Duration::from_millis(1) && batch < (1 << 20) {
                batch *= 2;
            }
        }
        // Measure.
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += t.elapsed();
            self.iters += batch;
        }
    }
}

/// Runs one target and prints its mean time.
fn run_target<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    println!("  {label}: {ns_per_iter:.1} ns/iter ({} iters)", bencher.iters);
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = ::core::concat!(
            "Benchmark group `", ::core::stringify!($group),
            "` (generated by `criterion_group!`)."
        )]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
