//! Collection strategies (`proptest::collection` stand-in).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`] (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
