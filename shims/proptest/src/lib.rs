//! In-tree, offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with `pat in strategy` parameters and an optional
//! `#![proptest_config(...)]` header, [`prop_assert!`] / [`prop_assert_eq!`],
//! range / tuple / `collection::vec` strategies, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-case seed, so runs are fully
//!   deterministic across machines (no persisted failure regressions file);
//! * there is **no shrinking** — a failing case reports its case index and
//!   seed instead of a minimized input.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest case {}/{} (seed {}) failed: {}",
                            case + 1,
                            config.cases,
                            case,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}
