//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating test-case values (no shrinking in this shim).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy producing a constant value (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
