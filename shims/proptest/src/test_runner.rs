//! Case execution support for the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Runner configuration (mirrors the fields of `proptest`'s config that the
/// workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a case body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator: case `i` always sees the same stream.
pub fn case_rng(case: u32) -> TestRng {
    // Fixed golden-ratio offset keeps neighbouring cases decorrelated.
    TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ u64::from(case))
}
