//! In-tree, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository is offline: nothing may be
//! fetched from crates.io. This shim implements exactly the slice of the
//! `rand 0.8` API the workspace uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom`] — with the same call-site syntax, so swapping in the
//! real crate later is a one-line manifest change.
//!
//! `StdRng` here is xoshiro256++ seeded through a SplitMix64 expansion. It is
//! deterministic per seed (the test suites rely on that) and statistically
//! strong enough for every simulation and property test in the workspace. It
//! is **not** the same stream as the real `rand::rngs::StdRng` (ChaCha12) and
//! is not cryptographically secure.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full word stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rng.next_u64()) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (unit_f64(rng) as $t) * (self.end - self.start);
                // Guard against rounding landing exactly on the excluded bound.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing generator interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open or inclusive range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
