//! Concrete generators (`rand::rngs` stand-in).

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// Same name and construction API as `rand::rngs::StdRng`, but a different
/// (still high-quality) stream — see the crate docs.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the recommended seeding for xoshiro.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }
}
