//! In-tree, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment for this repository is offline: nothing may be
//! fetched from crates.io. This shim implements exactly the slice of the
//! `rayon 1.10` API the workspace uses — [`ThreadPoolBuilder`],
//! [`ThreadPool::install`], [`current_num_threads`], and the
//! `slice.par_iter().map(f).collect::<Vec<_>>()` / `.sum()` call-site shape
//! via [`prelude`] — so swapping in the real crate later is a one-line
//! manifest change.
//!
//! # Determinism contract
//!
//! Unlike real rayon, which work-steals, this shim splits the input into
//! **contiguous per-thread chunks** and concatenates the chunk results in
//! chunk order. Two consequences the workspace relies on:
//!
//! * `collect::<Vec<_>>()` preserves input order at **any** thread count —
//!   a parallel map is a permutation-free reordering of the serial map.
//! * [`ParMap::sum`] first collects the mapped values in input order and
//!   then folds them **sequentially left-to-right**, so a floating-point
//!   sum is bit-identical whether the pool has 1 thread or 64. (Real rayon
//!   trades this away for tree reductions; callers here are simulation
//!   code whose tick output must be bit-reproducible across `threads=k`.)
//!
//! Threads are plain `std::thread::scope` workers spawned per call — there
//! is no persistent pool. For the coarse-grained row computations this
//! workspace shards (hundreds of microseconds to milliseconds each), spawn
//! overhead is noise. Nested `par_iter` inside a worker runs serially: the
//! pool's thread-count is a thread-local of the installing thread only.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread count installed by the innermost [`ThreadPool::install`] on
    /// this thread; `None` means "no pool installed" (use the default).
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Returns the number of threads the current scope's pool would use: the
/// installed pool's count inside [`ThreadPool::install`], otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.get().unwrap_or_else(default_num_threads)
}

/// Error from [`ThreadPoolBuilder::build`]. The shim never actually fails
/// to build; the type exists so call sites match the real crate.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; `0` (the default) means "available
    /// parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim, `Result` for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 { default_num_threads() } else { self.num_threads };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: a thread count plus an [`install`] scope.
/// Workers are spawned per parallel call, not kept alive.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous installed thread count even if `op` panics.
struct InstallGuard {
    prev: Option<usize>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.set(self.prev);
    }
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed: `par_iter` chains evaluated
    /// inside split their work across this pool's thread count. `op` itself
    /// runs on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _guard = InstallGuard { prev: INSTALLED_THREADS.replace(Some(self.threads)) };
        op()
    }
}

/// Traits imported by call sites: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`: borrows a
/// collection as a parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: Sync + 'data;

    /// Returns the parallel iterator.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T` items of a slice.
#[derive(Debug)]
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f`; the stage that actually fans out.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The mapped stage of a parallel iterator chain; terminal operations
/// ([`collect`], [`sum`]) execute it.
///
/// [`collect`]: ParMap::collect
/// [`sum`]: ParMap::sum
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map across the installed pool and collects results **in
    /// input order** (see the crate docs' determinism contract).
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(run_ordered(self.items, &self.f))
    }

    /// Runs the map across the installed pool, then folds the results
    /// **sequentially in input order** — bit-identical at any thread count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_ordered(self.items, &self.f).into_iter().sum()
    }
}

/// Collection types a parallel map can [`collect`](ParMap::collect) into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Maps `items` through `f` on up to [`current_num_threads`] scoped
/// threads, each taking one contiguous chunk, and returns the results in
/// input order.
fn run_ordered<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut chunks = items.chunks(chunk);
        // The first chunk runs on the calling thread after the workers for
        // the remaining chunks are spawned.
        let first = chunks.next().unwrap_or(&[]);
        for rest in chunks {
            handles.push(scope.spawn(move || rest.iter().map(f).collect::<Vec<R>>()));
        }
        out.extend(first.iter().map(f));
        for h in handles {
            // A worker panic propagates to the caller, like real rayon.
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().expect("build pool")
    }

    #[test]
    fn collect_preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 7, 8, 64, 1000, 1024] {
            let got: Vec<u64> =
                pool(threads).install(|| items.par_iter().map(|&x| x * x).collect::<Vec<_>>());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Values chosen so reassociation would visibly change the sum.
        let items: Vec<f64> = (0..4096).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let serial: f64 = items.iter().map(|&x| x * 1.000000119).sum();
        for threads in [1, 2, 5, 8, 32] {
            let par: f64 =
                pool(threads).install(|| items.par_iter().map(|&x| x * 1.000000119).sum());
            assert_eq!(par.to_bits(), serial.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn install_scopes_thread_count_and_restores_on_exit() {
        let outside = current_num_threads();
        let inside = pool(5).install(|| {
            let five = current_num_threads();
            let three = pool(3).install(current_num_threads);
            (five, three, current_num_threads())
        });
        assert_eq!(inside, (5, 3, 5), "nested installs scope correctly");
        assert_eq!(current_num_threads(), outside, "count restored after install");
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let p = ThreadPoolBuilder::new().build().expect("default pool");
        assert_eq!(p.current_num_threads(), default_num_threads());
        assert!(p.current_num_threads() >= 1);
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let got: Vec<u32> = pool(8).install(|| empty.par_iter().map(|&x| x).collect::<Vec<_>>());
        assert!(got.is_empty());
        let one = [41u32];
        let got: Vec<u32> = pool(8).install(|| one.par_iter().map(|&x| x + 1).collect::<Vec<_>>());
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn uninstalled_par_iter_still_runs() {
        // No install() in scope: falls back to the machine default.
        let items: Vec<u32> = (0..100).collect();
        let got: Vec<u32> = items.par_iter().map(|&x| x + 1).collect::<Vec<_>>();
        assert_eq!(got, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                items
                    .par_iter()
                    .map(|&x| if x == 63 { panic!("boom") } else { x })
                    .collect::<Vec<_>>()
            })
        });
        assert!(result.is_err(), "panic in a worker chunk must reach the caller");
        // The install guard must have restored the thread-local.
        assert_eq!(INSTALLED_THREADS.get(), None);
    }
}
