//! # sbon — cost-space query optimization for stream-based overlays
//!
//! Facade crate for the reproduction of *"A Cost-Space Approach to
//! Distributed Query Optimization in Stream Based Overlays"* (Shneidman,
//! Pietzuch, Welsh, Seltzer, Roussopoulos — ICDE 2005).
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! * [`netsim`] — simulated network substrate (transit-stub topologies,
//!   shortest-path latency, load churn, discrete-event clock).
//! * [`hilbert`] — d-dimensional Hilbert space-filling curve (and Morton
//!   baseline) used to linearize cost-space coordinates into DHT keys.
//! * [`coords`] — Vivaldi network coordinates: the vector dimensions of a
//!   cost space.
//! * [`dht`] — Chord-style DHT with the Hilbert-keyed coordinate catalog
//!   that implements decentralized physical mapping.
//! * [`query`] — continuous-query model: streams, operators, logical plans,
//!   selectivity statistics, and plan enumeration.
//! * [`core`] — the paper's contribution: cost spaces, virtual placement
//!   (spring relaxation et al.), physical mapping, the integrated
//!   plan-generation + service-placement optimizer, multi-query
//!   optimization with radius pruning, and re-optimization policies.
//! * [`overlay`] — a discrete-event SBON runtime that hosts circuits, routes
//!   data, and executes migrations — with a full query lifecycle (mid-run
//!   `deploy`/`undeploy`, reuse-aware tenancy with refcounted shared
//!   services).
//! * [`workload`] — workload generation and scenario-driven runs: arrival
//!   processes (Poisson / flash crowd / diurnal), session-duration
//!   distributions, Zipf query templates over a stream catalog, and the
//!   declarative `Scenario` driver.
//! * [`obs`] — deterministic observability: the metrics registry behind
//!   every stats view, virtual-time span tracing with deterministic
//!   sampling, and the crash-context flight recorder. Bit-invisible by
//!   contract: instrumentation never changes a run's results.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use sbon::prelude::*;
//!
//! // 1. A 200-node transit-stub network.
//! let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(200), 42);
//! let latency = all_pairs_latency(&topo.graph);
//!
//! // 2. A 2-D latency + squared-CPU-load cost space.
//! let embedding = VivaldiConfig::default().embed(&latency, 42);
//! let mut rng = rng_from_seed(42);
//! let loads = LoadModel::Random { lo: 0.0, hi: 0.8 }.generate(topo.num_nodes(), &mut rng);
//! let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
//!
//! // 3. A 4-way join query over pinned producers, and the integrated optimizer.
//! let hosts = topo.host_candidates();
//! let query = QuerySpec::join_star(&[hosts[0], hosts[1], hosts[2], hosts[3]], hosts[4], 10.0, 0.5);
//! let optimizer = IntegratedOptimizer::new(OptimizerConfig::default());
//! let outcome = optimizer.optimize(&query, &space, &latency).unwrap();
//! assert!(outcome.cost.network_usage > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use sbon_coords as coords;
pub use sbon_core as core;
pub use sbon_dht as dht;
pub use sbon_hilbert as hilbert;
pub use sbon_netsim as netsim;
pub use sbon_obs as obs;
pub use sbon_overlay as overlay;
pub use sbon_query as query;
pub use sbon_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use sbon_coords::vivaldi::{VivaldiConfig, VivaldiEmbedding};
    pub use sbon_core::circuit::{Circuit, CircuitCost, ServiceId};
    pub use sbon_core::costspace::{CostPoint, CostSpace, CostSpaceBuilder, WeightFn};
    pub use sbon_core::optimizer::{
        IntegratedOptimizer, OptimizerConfig, PlacedCircuit, TwoStepOptimizer,
    };
    pub use sbon_core::placement::{
        CentroidPlacer, DhtMapper, DhtMapperConfig, GradientPlacer, LiveOracleMapper, OracleMapper,
        PhysicalMapper, RelaxationConfig, RelaxationPlacer, VirtualPlacer,
    };
    pub use sbon_core::QuerySpec;
    pub use sbon_dht::catalog::CoordinateCatalog;
    pub use sbon_dht::ring::{DhtConfig, DhtRing};
    pub use sbon_netsim::dijkstra::all_pairs_latency;
    pub use sbon_netsim::graph::NodeId;
    pub use sbon_netsim::latency::{LatencyMatrix, LatencyProvider};
    pub use sbon_netsim::lazy::{LazyLatency, LazyLatencyStats};
    pub use sbon_netsim::load::{Attr, ChurnProcess, LoadModel, NodeAttrs};
    pub use sbon_netsim::rng::rng_from_seed;
    pub use sbon_netsim::topology::transit_stub::{self, TransitStubConfig};
    pub use sbon_netsim::topology::Topology;
    pub use sbon_query::plan::LogicalPlan;
    pub use sbon_query::stats::StatsCatalog;
    pub use sbon_workload::{
        ArrivalProcess, CatalogSpec, QueryTemplate, Scenario, ScenarioReport, SessionDuration,
        WorkloadSpec,
    };
}
