//! End-to-end integration: topology → coordinates → cost space → optimizer,
//! across several seeds. These tests pin down the cross-crate behaviour the
//! figures rely on.

use sbon::core::placement::optimal_tree_placement;
use sbon::netsim::rng::derive_rng;
use sbon::prelude::*;

fn world(nodes: usize, seed: u64) -> (Topology, LatencyMatrix, sbon::core::costspace::CostSpace) {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(nodes), seed);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, seed);
    let mut rng = rng_from_seed(seed);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.7 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    (topo, latency, space)
}

fn random_query(topo: &Topology, seed: u64, producers: usize) -> QuerySpec {
    let mut rng = derive_rng(seed, 0xe2e);
    let hosts = topo.host_candidates();
    let mut picked = Vec::new();
    while picked.len() < producers + 1 {
        let h = hosts[rand::Rng::gen_range(&mut rng, 0..hosts.len())];
        if !picked.contains(&h) {
            picked.push(h);
        }
    }
    let consumer = picked.pop().unwrap();
    QuerySpec::join_star(&picked, consumer, 10.0, 0.02)
}

#[test]
fn integrated_dominates_two_step_on_its_selection_metric() {
    for seed in 0..6u64 {
        let (topo, latency, space) = world(150, seed);
        let q = random_query(&topo, seed, 4);
        let int = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        let two = TwoStepOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        // The two-step plan is within the integrated candidate set, placed
        // by the same pipeline, so the integrated estimate can never lose.
        assert!(
            int.estimated.network_usage <= two.estimated.network_usage + 1e-9,
            "seed {seed}: integrated {} vs two-step {}",
            int.estimated.network_usage,
            two.estimated.network_usage
        );
    }
}

#[test]
fn integrated_usually_beats_two_step_on_measured_usage() {
    let mut wins = 0;
    let trials = 10;
    for seed in 0..trials {
        let (topo, latency, space) = world(150, seed);
        let q = random_query(&topo, seed, 4);
        let int = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        let two = TwoStepOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        if int.cost.network_usage <= two.cost.network_usage + 1e-9 {
            wins += 1;
        }
    }
    // Embedding error can flip individual instances; the aggregate must
    // clearly favour the integrated optimizer (paper's Figure 1 argument).
    assert!(wins * 2 > trials, "integrated won only {wins}/{trials}");
}

#[test]
fn cost_space_pipeline_is_within_factor_of_omniscient_optimum() {
    let mut ratios = Vec::new();
    for seed in 0..6u64 {
        let (topo, latency, space) = world(150, seed);
        let q = random_query(&topo, seed, 4);
        let int = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        let hosts = topo.host_candidates();
        let (_, optimal) =
            optimal_tree_placement(&int.circuit, &hosts, |a, b| latency.latency(a, b));
        ratios.push(int.cost.network_usage / optimal.max(1e-9));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean < 4.0,
        "cost-space pipeline should stay within a small factor of optimal, got {mean} ({ratios:?})"
    );
    assert!(ratios.iter().all(|&r| r >= 1.0 - 1e-6), "nothing beats the optimum: {ratios:?}");
}

#[test]
fn dht_mapped_circuits_stay_close_to_oracle_mapped() {
    use sbon::core::placement::DhtMapper;
    for seed in 0..4u64 {
        let (topo, latency, space) = world(150, seed);
        let q = random_query(&topo, seed, 3);
        let opt = IntegratedOptimizer::new(OptimizerConfig::default());
        let oracle = opt.optimize(&q, &space, &latency).unwrap();
        let mut dht = DhtMapper::build(&space, 12, 8);
        let dhted = opt.optimize_with_mapper(&q, &space, &latency, &mut dht).unwrap();
        assert!(dhted.mapping_hops > 0, "DHT must route");
        assert!(
            dhted.cost.network_usage <= oracle.cost.network_usage * 1.8 + 1e-9,
            "seed {seed}: dht {} vs oracle {}",
            dhted.cost.network_usage,
            oracle.cost.network_usage
        );
    }
}

#[test]
fn consumer_and_producers_never_move() {
    let (topo, latency, space) = world(120, 3);
    let q = random_query(&topo, 3, 4);
    let placed = IntegratedOptimizer::new(OptimizerConfig::default())
        .optimize(&q, &space, &latency)
        .unwrap();
    assert_eq!(placed.placement.node_of(placed.circuit.root()), q.consumer);
    for s in placed.circuit.services() {
        if let sbon::core::circuit::ServiceKind::Producer(stream) = &s.kind {
            assert_eq!(placed.placement.node_of(s.id), q.producer_of(*stream));
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (topo, latency, space) = world(120, 9);
        let q = random_query(&topo, 9, 4);
        let placed = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &latency)
            .unwrap();
        (placed.plan.render(), placed.cost.network_usage)
    };
    assert_eq!(run(), run());
}

#[test]
fn higher_dimensional_latency_space_works_end_to_end() {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(120), 4);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig { dims: 4, ..Default::default() }.embed(&latency, 4);
    let mut rng = rng_from_seed(4);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.7 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    assert_eq!(space.dims(), 5);
    let q = random_query(&topo, 4, 3);
    let placed = IntegratedOptimizer::new(OptimizerConfig::default())
        .optimize(&q, &space, &latency)
        .unwrap();
    assert!(placed.cost.network_usage > 0.0);
}
