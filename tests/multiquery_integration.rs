//! Multi-query optimization across crates: shared stream catalogs, radius
//! sweeps, and the marginal-cost accounting.

use rand::Rng;

use sbon::core::multiquery::{MultiQueryOptimizer, ReuseScope};
use sbon::netsim::rng::derive_rng;
use sbon::prelude::*;
use sbon::query::stream::{StreamCatalog, StreamId};

struct Fixture {
    latency: LatencyMatrix,
    space: sbon::core::costspace::CostSpace,
    streams: StreamCatalog,
    stats: StatsCatalog,
    hosts: Vec<NodeId>,
}

fn fixture(seed: u64) -> Fixture {
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(150), seed);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, seed);
    let mut rng = rng_from_seed(seed);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.5 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    let hosts = topo.host_candidates();
    let mut streams = StreamCatalog::new();
    for i in 0..8 {
        let host = hosts[rng.gen_range(0..hosts.len())];
        streams.register(format!("feed{i}"), 10.0, host);
    }
    let stats = StatsCatalog::from_streams(&streams, 0.02);
    Fixture { latency, space, streams, stats, hosts }
}

fn query(f: &Fixture, streams: &[u32], consumer_idx: usize) -> QuerySpec {
    QuerySpec::new(
        f.streams.clone(),
        f.stats.clone(),
        streams.iter().map(|&i| StreamId(i)).collect(),
        f.hosts[consumer_idx],
    )
}

#[test]
fn identical_queries_from_different_consumers_share_work() {
    let f = fixture(1);
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    let first = mq
        .optimize_and_deploy(&query(&f, &[0, 1], 5), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    assert!(first.reused.is_empty());
    let second = mq
        .optimize_and_deploy(&query(&f, &[0, 1], 50), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    assert_eq!(second.reused.len(), 1);
    assert!(second.marginal_cost.network_usage < second.standalone_cost.network_usage);
}

#[test]
fn different_stream_sets_never_merge() {
    let f = fixture(2);
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    mq.optimize_and_deploy(&query(&f, &[0, 1], 5), &f.space, &f.latency, ReuseScope::All).unwrap();
    let other = mq
        .optimize_and_deploy(&query(&f, &[2, 3], 6), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    assert!(other.reused.is_empty(), "disjoint joins must not merge");
}

#[test]
fn wider_radius_never_examines_fewer_candidates() {
    let f = fixture(3);
    let mut base = MultiQueryOptimizer::new(OptimizerConfig::default());
    let mut rng = derive_rng(3, 0x3a);
    for i in 0..20 {
        let a = rng.gen_range(0..8u32);
        let mut b = rng.gen_range(0..8u32);
        if a == b {
            b = (b + 1) % 8;
        }
        base.optimize_and_deploy(
            &query(&f, &[a, b], 10 + i),
            &f.space,
            &f.latency,
            ReuseScope::None,
        )
        .unwrap();
    }
    let probe = query(&f, &[0, 1], 60);
    let mut last = 0usize;
    for r in [0.0, 20.0, 60.0, 200.0] {
        let scope = if r == 0.0 { ReuseScope::None } else { ReuseScope::Radius(r) };
        let mut mq = base.clone();
        let out = mq.optimize_and_deploy(&probe, &f.space, &f.latency, scope).unwrap();
        assert!(
            out.candidates_examined >= last,
            "radius {r}: {} < {last}",
            out.candidates_examined
        );
        last = out.candidates_examined;
    }
}

#[test]
fn marginal_cost_never_exceeds_standalone_under_all_scope() {
    let f = fixture(4);
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    let mut rng = derive_rng(4, 0x4b);
    for i in 0..15 {
        let a = rng.gen_range(0..8u32);
        let mut b = rng.gen_range(0..8u32);
        if a == b {
            b = (b + 1) % 8;
        }
        let out = mq
            .optimize_and_deploy(&query(&f, &[a, b], 10 + i), &f.space, &f.latency, ReuseScope::All)
            .unwrap();
        assert!(
            out.marginal_cost.network_usage <= out.standalone_cost.network_usage + 1e-6,
            "query {i}: marginal {} > standalone {}",
            out.marginal_cost.network_usage,
            out.standalone_cost.network_usage
        );
    }
}

#[test]
fn teardown_makes_instances_unavailable() {
    let f = fixture(5);
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    let first = mq
        .optimize_and_deploy(&query(&f, &[0, 1], 5), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    assert!(mq.teardown(first.id));
    let second = mq
        .optimize_and_deploy(&query(&f, &[0, 1], 6), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    assert!(second.reused.is_empty(), "torn-down instances must not be reused");
}

#[test]
fn three_way_queries_can_reuse_two_way_subjoins() {
    let f = fixture(6);
    let mut mq = MultiQueryOptimizer::new(OptimizerConfig::default());
    // Deploy a 2-way join of feeds 0 and 1.
    mq.optimize_and_deploy(&query(&f, &[0, 1], 5), &f.space, &f.latency, ReuseScope::All).unwrap();
    // A 3-way query over feeds 0, 1, 2 can reuse the (0 ⋈ 1) instance when
    // its chosen plan contains that subtree.
    let out = mq
        .optimize_and_deploy(&query(&f, &[0, 1, 2], 40), &f.space, &f.latency, ReuseScope::All)
        .unwrap();
    // Reuse is plan-dependent, but the optimizer saw the candidates; at
    // minimum the accounting stayed consistent.
    assert!(out.marginal_cost.network_usage <= out.standalone_cost.network_usage + 1e-6);
    if !out.reused.is_empty() {
        assert!(out.reused.iter().all(|r| r.signature.contains('⋈')));
    }
}
