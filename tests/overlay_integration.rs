//! Integration tests for the overlay runtime through the facade crate:
//! long-running adaptation, failure recovery, and fluid-vs-tuple agreement.

use sbon::core::reopt::ReoptPolicy;
use sbon::overlay::{
    simulate_circuit, DataPlaneConfig, JitterModel, OverlayRuntime, RuntimeConfig,
};
use sbon::prelude::*;

fn world(seed: u64) -> Topology {
    transit_stub::generate(&TransitStubConfig::with_total_nodes(120), seed)
}

fn queries(topo: &Topology, count: usize) -> Vec<QuerySpec> {
    let hosts = topo.host_candidates();
    (0..count)
        .map(|q| {
            let b = q * 9;
            QuerySpec::join_star(
                &[hosts[b], hosts[b + 2], hosts[b + 4], hosts[b + 6]],
                hosts[b + 8],
                10.0,
                0.02,
            )
        })
        .collect()
}

fn run_with(adaptive: bool, seed: u64) -> sbon::overlay::RunReport {
    let topo = world(seed);
    let mut rt = OverlayRuntime::new(
        &topo,
        seed,
        RuntimeConfig::builder()
            .horizon_ms(90_000.0)
            .reopt_interval_ms(adaptive.then_some(10_000.0))
            .policy(ReoptPolicy { migration_threshold: 0.05, replacement_threshold: 0.15 })
            .churn(ChurnProcess::RandomWalk { std_dev: 0.08 })
            .latency_jitter(JitterModel { edges_per_tick: 80, ..Default::default() })
            .migration_penalty(25.0)
            .build(),
    );
    for q in queries(&topo, 4) {
        rt.deploy(q).unwrap();
    }
    rt.run()
}

#[test]
fn adaptation_wins_on_average_across_seeds() {
    let seeds = [1u64, 2, 3, 4];
    let static_total: f64 = seeds.iter().map(|&s| run_with(false, s).total_cost()).sum();
    let adaptive_total: f64 = seeds.iter().map(|&s| run_with(true, s).total_cost()).sum();
    assert!(
        adaptive_total < static_total,
        "adaptive {adaptive_total} must beat static {static_total} in aggregate"
    );
}

#[test]
fn failure_recovery_keeps_all_surviving_circuits_running() {
    let topo = world(5);
    let mut rt = OverlayRuntime::new(
        &topo,
        5,
        RuntimeConfig::builder()
            .horizon_ms(20_000.0)
            .churn(ChurnProcess::None)
            .reopt_interval_ms(None)
            .build(),
    );
    let handles: Vec<_> = queries(&topo, 3).into_iter().map(|q| rt.deploy(q).unwrap()).collect();
    // Kill the hosts of every unpinned service of circuit 0 at t=5s, 10s.
    let victims: Vec<NodeId> = {
        let placement = rt.placement(handles[0]).unwrap();
        placement.as_slice().to_vec()
    };
    rt.schedule_failure(5_000.0, victims[2]); // a join host (services 0,1 = producers)
    let report = rt.run();
    // No sample may show zero usage unless a circuit died entirely.
    let dead = rt.failed_circuits().len();
    if dead == 0 {
        assert!(report.samples.iter().all(|s| s.network_usage > 0.0));
    }
    // Surviving circuits have placements on live nodes only.
    for &h in &handles {
        if let Some(p) = rt.placement(h) {
            assert!(p.as_slice().iter().all(|&n| rt.is_alive(n)));
        }
    }
}

#[test]
fn tuple_level_dataplane_agrees_with_fluid_model_through_facade() {
    let topo = world(6);
    let latency = all_pairs_latency(&topo.graph);
    let embedding = VivaldiConfig::default().embed(&latency, 6);
    let mut rng = rng_from_seed(6);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.5 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
    let hosts = topo.host_candidates();
    let q = QuerySpec::join_star(&[hosts[0], hosts[30], hosts[60]], hosts[90], 15.0, 0.02);
    let placed = IntegratedOptimizer::new(OptimizerConfig::default())
        .optimize(&q, &space, &latency)
        .unwrap();
    let report = simulate_circuit(
        &placed.circuit,
        &placed.placement,
        &latency,
        DataPlaneConfig { duration_ms: 90_000.0, seed: 6 },
    );
    assert!(
        report.usage_relative_error() < 0.12,
        "tuple-level {} vs fluid {}",
        report.measured_network_usage,
        report.predicted_network_usage
    );
    assert!(report.tuples_delivered > 0);
}

#[test]
fn rewrite_cadence_is_usable_from_the_public_api() {
    let topo = world(7);
    let mut rt = OverlayRuntime::new(
        &topo,
        7,
        RuntimeConfig::builder()
            .horizon_ms(30_000.0)
            .reopt_interval_ms(None)
            .rewrite_interval_ms(10_000.0)
            .churn(ChurnProcess::RandomWalk { std_dev: 0.1 })
            .latency_jitter(JitterModel { edges_per_tick: 150, ..Default::default() })
            .build(),
    );
    for q in queries(&topo, 2) {
        rt.deploy(q).unwrap();
    }
    let report = rt.run();
    assert_eq!(report.samples.len(), 30);
}
