//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary small worlds and workloads, not just the fixtures the unit
//! tests pin down.

use proptest::prelude::*;
use rand::Rng;

use sbon::coords::vivaldi::VivaldiEmbedding;
use sbon::core::circuit::Circuit;
use sbon::core::costspace::{CostSpaceBuilder, DimensionSpec, ScalarSource, WeightFn};
use sbon::core::optimizer::{IntegratedOptimizer, OptimizerConfig, QuerySpec, TwoStepOptimizer};
use sbon::core::placement::{
    map_circuit, optimal_tree_placement, DhtMapper, OracleMapper, PhysicalMapper, RelaxationPlacer,
    VirtualPlacer,
};
use sbon::dht::{CoordinateCatalog, DhtConfig, DhtRing, ProtoConfig, RingKey, RoutedCatalog};
use sbon::hilbert::{HilbertCurve, Quantizer};
use sbon::netsim::dijkstra::all_pairs_latency;
use sbon::netsim::graph::{EdgeId, NodeId};
use sbon::netsim::latency::{EuclideanLatency, LatencyProvider};
use sbon::netsim::lazy::{DeltaPolicy, LazyLatency};
use sbon::netsim::load::{Attr, ChurnProcess, NodeAttrs};
use sbon::netsim::rng::derive_rng;
use sbon::netsim::topology::transit_stub::{self, TransitStubConfig};
use sbon::netsim::topology::waxman::{self, WaxmanConfig};
use sbon::overlay::{JitterModel, LatencyBackend, OverlayRuntime, RuntimeConfig};
use sbon::query::enumerate::{all_join_trees, dp_best_plan};
use sbon::query::stats::StatsCatalog;
use sbon::query::stream::StreamId;

/// Strategy: a small Euclidean world of 6–20 nodes in a 200×200 box.
fn euclidean_world() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), 6..20)
}

/// The seed `Vec`-backed ring, kept verbatim as the reference
/// implementation the B-tree [`DhtRing`] is pinned against: one sorted
/// vector, binary search everywhere, `O(n)` memmove per join/leave.
#[derive(Default)]
struct VecRing {
    members: Vec<(RingKey, u32)>,
}

impl VecRing {
    fn join(&mut self, mut key: RingKey, member: u32) -> RingKey {
        loop {
            match self.members.binary_search_by(|&(k, _)| k.cmp(&key)) {
                Ok(_) => key = key.wrapping_add(1),
                Err(pos) => {
                    self.members.insert(pos, (key, member));
                    return key;
                }
            }
        }
    }

    fn leave(&mut self, member: u32) -> usize {
        let before = self.members.len();
        self.members.retain(|&(_, m)| m != member);
        before - self.members.len()
    }

    fn successor(&self, key: RingKey) -> Option<(RingKey, u32)> {
        if self.members.is_empty() {
            return None;
        }
        let pos = match self.members.binary_search_by(|&(k, _)| k.cmp(&key)) {
            Ok(pos) => pos,
            Err(pos) => pos % self.members.len(),
        };
        Some(self.members[pos])
    }

    fn predecessor(&self, key: RingKey) -> Option<(RingKey, u32)> {
        if self.members.is_empty() {
            return None;
        }
        let pos = match self.members.binary_search_by(|&(k, _)| k.cmp(&key)) {
            Ok(pos) | Err(pos) => pos,
        };
        let idx = (pos + self.members.len() - 1) % self.members.len();
        Some(self.members[idx])
    }

    fn neighbors(&self, key: RingKey, count: usize) -> Vec<(RingKey, u32)> {
        let cw = |a: RingKey, b: RingKey| b.wrapping_sub(a);
        let n = self.members.len();
        if n == 0 || count == 0 {
            return Vec::new();
        }
        let start = match self.members.binary_search_by(|&(k, _)| k.cmp(&key)) {
            Ok(pos) => pos,
            Err(pos) => pos % n,
        };
        let take = count.min(n);
        let mut out = Vec::with_capacity(take);
        let mut fwd = start;
        let mut bwd = (start + n - 1) % n;
        for _ in 0..take {
            let fdist = cw(key, self.members[fwd].0);
            let bdist = cw(self.members[bwd].0, key);
            if fdist <= bdist {
                out.push(self.members[fwd]);
                fwd = (fwd + 1) % n;
            } else {
                out.push(self.members[bwd]);
                bwd = (bwd + n - 1) % n;
            }
        }
        out
    }
}

fn world_from(points: &[(f64, f64)]) -> (EuclideanLatency, sbon::core::costspace::CostSpace) {
    let pts: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
    let lat = EuclideanLatency::new(pts.clone());
    let space = CostSpaceBuilder::latency_space(&VivaldiEmbedding::exact(pts));
    (lat, space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The integrated optimizer's chosen estimate is the minimum over its
    /// candidate set — re-placing any candidate can never beat it.
    #[test]
    fn integrated_selection_is_minimal(points in euclidean_world(), sel in 0.001f64..0.5) {
        let (lat, space) = world_from(&points);
        let n = points.len() as u32;
        let q = QuerySpec::join_star(
            &[NodeId(0), NodeId(1), NodeId(2)],
            NodeId(n - 1),
            10.0,
            sel,
        );
        let opt = IntegratedOptimizer::new(OptimizerConfig::default());
        let best = opt.optimize(&q, &space, &lat).unwrap();
        let placer = opt.config().placer.build();
        for plan in opt.candidate_plans(&q) {
            let circuit = Circuit::from_plan(&plan, &q.stats, |s| q.producer_of(s), q.consumer);
            let vp = placer.place(&circuit, &space);
            let mut mapper = OracleMapper;
            let mapped = map_circuit(&circuit, &vp, &space, &mut mapper);
            let est = circuit.cost_with(&mapped.placement, |a, b| space.vector_distance(a, b));
            prop_assert!(best.estimated.network_usage <= est.network_usage + 1e-6);
        }
    }

    /// With exact coordinates (zero embedding error), the integrated
    /// optimizer never does worse than two-step on *measured* usage.
    #[test]
    fn exact_embedding_integrated_never_loses(points in euclidean_world()) {
        let (lat, space) = world_from(&points);
        let n = points.len() as u32;
        let q = QuerySpec::join_star(
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            NodeId(n - 1),
            10.0,
            0.05,
        );
        let int = IntegratedOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &lat).unwrap();
        let two = TwoStepOptimizer::new(OptimizerConfig::default())
            .optimize(&q, &space, &lat).unwrap();
        prop_assert!(int.cost.network_usage <= two.cost.network_usage + 1e-6);
    }

    /// Relaxation placement never increases the *spring energy* relative to
    /// the centroid seed it starts from (the energy — not the linear
    /// network-usage proxy — is what the spring system provably minimizes).
    #[test]
    fn relaxation_never_regresses_from_seed(points in euclidean_world(), rate in 1.0f64..100.0) {
        let (_, space) = world_from(&points);
        let n = points.len() as u32;
        let q = QuerySpec::join_star(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(n - 1), rate, 0.05);
        let plan = dp_best_plan(&q.stats, &q.join_set).0;
        let circuit = Circuit::from_plan(&plan, &q.stats, |s| q.producer_of(s), q.consumer);
        let placer = RelaxationPlacer::default();
        let vp = placer.place(&circuit, &space);
        // The optimum of the spring system is ≤ any specific assignment,
        // in particular the all-at-centroid seed.
        let seed_cost = {
            use sbon::core::placement::VirtualPlacement;
            // Reconstruct the seed: pinned at their coords, unpinned at the
            // pinned mean. (Mirrors the internal seeding.)
            let vd = space.vector_dims();
            let mut acc = vec![0.0; vd];
            let mut count = 0;
            for s in circuit.services() {
                if let sbon::core::circuit::ServicePin::Pinned(h) = s.pin {
                    for (a, c) in acc.iter_mut().zip(space.point(h).vector_part(vd)) {
                        *a += c;
                    }
                    count += 1;
                }
            }
            for a in acc.iter_mut() { *a /= count as f64; }
            let coords: Vec<Vec<f64>> = circuit.services().iter().map(|s| match s.pin {
                sbon::core::circuit::ServicePin::Pinned(h) =>
                    space.point(h).vector_part(vd).to_vec(),
                sbon::core::circuit::ServicePin::Unpinned => acc.clone(),
            }).collect();
            VirtualPlacement::new(coords).spring_energy(&circuit)
        };
        prop_assert!(vp.spring_energy(&circuit) <= seed_cost + 1e-6);
    }

    /// The omniscient tree DP lower-bounds every mapped placement of the
    /// same circuit.
    #[test]
    fn tree_dp_is_a_lower_bound(points in euclidean_world()) {
        let (lat, space) = world_from(&points);
        let n = points.len() as u32;
        let q = QuerySpec::join_star(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(n - 1), 10.0, 0.05);
        let plan = dp_best_plan(&q.stats, &q.join_set).0;
        let circuit = Circuit::from_plan(&plan, &q.stats, |s| q.producer_of(s), q.consumer);
        let hosts: Vec<NodeId> = (0..n).map(NodeId).collect();
        let (_, optimal) = optimal_tree_placement(&circuit, &hosts, |a, b| lat.latency(a, b));
        let placer = RelaxationPlacer::default();
        let vp = placer.place(&circuit, &space);
        let mut mapper = OracleMapper;
        let mapped = map_circuit(&circuit, &vp, &space, &mut mapper);
        let usage = circuit.cost_with(&mapped.placement, |a, b| lat.latency(a, b)).network_usage;
        prop_assert!(usage + 1e-6 >= optimal, "mapped {usage} < optimal {optimal}");
    }

    /// The lazy latency provider must return **bit-identical** values to
    /// the dense all-pairs matrix recomputed from the same (mutated) graph,
    /// across random topology families, jitter sequences, invalidation
    /// orders, and cache capacities — the contract that makes
    /// `LatencyBackend::Lazy` a drop-in for `Dense` in the overlay runtime.
    #[test]
    fn lazy_provider_is_bit_identical_to_all_pairs(
        seed in 0u64..1_000_000,
        nodes in 16usize..56,
        rounds in 1usize..5,
    ) {
        // Alternate the topology family and cache capacity by seed so one
        // strategy covers transit-stub + Waxman and bounded + unbounded.
        let topo = if seed % 2 == 0 {
            transit_stub::generate(&TransitStubConfig::with_total_nodes(nodes), seed)
        } else {
            waxman::generate(&WaxmanConfig { nodes, ..Default::default() }, seed)
        };
        let mut lazy = if seed % 3 == 0 {
            LazyLatency::with_capacity(topo.graph.clone(), 1 + nodes / 8)
        } else {
            LazyLatency::new(topo.graph.clone())
        };
        let n = lazy.len();
        let m = lazy.graph().num_edges();
        let mut rng = derive_rng(seed, 0x1a27);
        for _ in 0..rounds {
            // Random interleaving of row-warming queries and edge jitter:
            // each op is either a query (possibly of a stale row) or a
            // mutation (possibly of an edge whose rows are cached).
            for _ in 0..24 {
                if rng.gen_range(0..2) == 0 {
                    let a = NodeId(rng.gen_range(0..n as u32));
                    let b = NodeId(rng.gen_range(0..n as u32));
                    let _ = lazy.latency(a, b);
                } else {
                    let e = EdgeId(rng.gen_range(0..m as u32));
                    let f = rng.gen_range(0.4..2.2);
                    lazy.scale_edge_clamped(e, f, (0.25, 4.0));
                }
            }
            // Full equivalence sweep against a fresh dense recompute.
            let dense = all_pairs_latency(lazy.graph());
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (a, b) = (NodeId(a), NodeId(b));
                    let (l, d) = (lazy.latency(a, b), dense.latency(a, b));
                    prop_assert!(
                        l.to_bits() == d.to_bits(),
                        "lazy {l} != dense {d} for {a}->{b} (seed {seed})"
                    );
                }
            }
        }
    }

    /// Batched edge-delta absorption — the overlay's jitter-tick path
    /// (`apply_edge_deltas`) — must leave every *served* value bit-identical
    /// to a fresh all-pairs Dijkstra of the mutated graph, across random
    /// topology families, delta batches (with intra-batch duplicate edges,
    /// where the last write wins), cache capacities, and **both** delta
    /// policies: dynamic-SSSP `Repair` and the `Invalidate` baseline must
    /// be observationally indistinguishable.
    #[test]
    fn repaired_rows_match_fresh_dijkstra_under_delta_batches(
        seed in 0u64..1_000_000,
        nodes in 16usize..56,
        batches in 1usize..5,
        batch_size in 1usize..24,
    ) {
        let topo = if seed % 2 == 0 {
            transit_stub::generate(&TransitStubConfig::with_total_nodes(nodes), seed)
        } else {
            waxman::generate(&WaxmanConfig { nodes, ..Default::default() }, seed)
        };
        let mut lazy = match seed % 3 {
            0 => LazyLatency::with_capacity(topo.graph.clone(), 1 + nodes / 8),
            1 => LazyLatency::new(topo.graph.clone()),
            _ => LazyLatency::new(topo.graph.clone())
                .with_delta_policy(DeltaPolicy::Invalidate),
        };
        let n = lazy.len();
        let m = lazy.graph().num_edges();
        let mut rng = derive_rng(seed, 0x5e9a);
        // Warm a random working set so the batches hit resident rows.
        for _ in 0..12 {
            let a = NodeId(rng.gen_range(0..n as u32));
            let b = NodeId(rng.gen_range(0..n as u32));
            let _ = lazy.latency(a, b);
        }
        for _ in 0..batches {
            let deltas: Vec<(EdgeId, f64)> = (0..batch_size)
                .map(|_| {
                    let e = EdgeId(rng.gen_range(0..m as u32));
                    (e, rng.gen_range(0.5..12.0))
                })
                .collect();
            lazy.apply_edge_deltas(&deltas);
            let dense = all_pairs_latency(lazy.graph());
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (a, b) = (NodeId(a), NodeId(b));
                    let (l, d) = (lazy.latency(a, b), dense.latency(a, b));
                    prop_assert!(
                        l.to_bits() == d.to_bits(),
                        "lazy {l} != dense {d} for {a}->{b} (seed {seed})"
                    );
                }
            }
        }
    }

    /// The unified `JitterModel` contract: with churn disabled, a jittered
    /// run is **bit-identical across latency backends** — both draw the
    /// same edge-granular delta stream from the run RNG, the Dense backend
    /// re-derives its matrix from the mutated graph, and the Lazy backend
    /// repairs its rows, so every sample and counter in the `RunReport`
    /// must agree exactly for arbitrary seeds and jitter intensities.
    #[test]
    fn no_churn_jittered_run_is_backend_invariant(
        seed in 0u64..1_000_000,
        edges_per_tick in 1usize..80,
    ) {
        let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(60), seed);
        let hosts = topo.host_candidates();
        let run = |backend: LatencyBackend| {
            let mut rt = OverlayRuntime::new(
                &topo,
                seed,
                RuntimeConfig::builder()
                    .horizon_ms(6_000.0)
                    .reopt_interval_ms(None)
                    .churn(ChurnProcess::None)
                    .latency_jitter(JitterModel { edges_per_tick, ..Default::default() })
                    .latency_backend(backend)
                    .build(),
            );
            rt.deploy(QuerySpec::join_star(&[hosts[0], hosts[8], hosts[16]], hosts[24], 10.0, 0.02))
                .expect("query deploys");
            rt.run()
        };
        let dense = run(LatencyBackend::Dense);
        let lazy = run(LatencyBackend::Lazy);
        prop_assert_eq!(dense, lazy);
    }

    /// A cost space maintained through the delta API
    /// (`update_scalars` / `set_vector_coord`) must be **bit-identical** to
    /// a `CostSpaceBuilder` bulk rebuild from the same final embedding and
    /// attribute table, across random interleavings of attribute churn and
    /// coordinate refinement — the contract that lets the runtime refresh
    /// `O(churned)` points per tick instead of rebuilding the universe.
    #[test]
    fn incremental_costspace_matches_rebuild(
        seed in 0u64..1_000_000,
        nodes in 4usize..24,
        ops in 8usize..80,
    ) {
        let mut rng = derive_rng(seed, 0xDE17A);
        let mut coords: Vec<Vec<f64>> = (0..nodes)
            .map(|_| vec![rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)])
            .collect();
        let mut attrs = NodeAttrs::idle(nodes);
        for i in 0..nodes as u32 {
            attrs.set(NodeId(i), Attr::CpuLoad, rng.gen_range(0.0..1.0));
            attrs.set(NodeId(i), Attr::MemLoad, rng.gen_range(0.0..1.0));
        }
        let specs = vec![
            DimensionSpec {
                name: "cpu²".to_string(),
                source: ScalarSource::Attr(Attr::CpuLoad),
                weight: WeightFn::Squared { scale: 100.0 },
            },
            DimensionSpec {
                name: "mem".to_string(),
                source: ScalarSource::Attr(Attr::MemLoad),
                weight: WeightFn::Linear { scale: 50.0 },
            },
        ];
        let mut space = CostSpaceBuilder::custom(
            &VivaldiEmbedding::exact(coords.clone()),
            &attrs,
            specs.clone(),
            "delta-maintained",
        );
        for _ in 0..ops {
            let node = NodeId(rng.gen_range(0..nodes as u32));
            match rng.gen_range(0..4) {
                // Attribute churn (absolute set, possibly out of band —
                // clamped identically on both paths).
                0 => {
                    attrs.set(node, Attr::CpuLoad, rng.gen_range(-0.2..1.2));
                    space.update_scalars(node, &attrs);
                }
                // Relative attribute step.
                1 => {
                    attrs.add(node, Attr::MemLoad, rng.gen_range(-0.4..0.4));
                    space.update_scalars(node, &attrs);
                }
                // Embedding refinement of the vector prefix.
                2 => {
                    let c = vec![rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)];
                    space.set_vector_coord(node, &c);
                    coords[node.index()] = c;
                }
                // Redundant refresh of an untouched node (must be a no-op).
                _ => {
                    prop_assert!(!space.update_scalars(node, &attrs));
                }
            }
        }
        let rebuilt = CostSpaceBuilder::custom(
            &VivaldiEmbedding::exact(coords.clone()),
            &attrs,
            specs,
            "bulk-rebuilt",
        );
        for i in 0..nodes as u32 {
            let (d, r) = (space.point(NodeId(i)), rebuilt.point(NodeId(i)));
            for (a, b) in d.as_slice().iter().zip(r.as_slice()) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "node {i}: delta {a} != rebuilt {b} (seed {seed})"
                );
            }
        }
    }

    /// A `DhtMapper` maintained by forwarding cost-point deltas
    /// (`update_node`) must answer every lookup exactly like a mapper
    /// freshly built from the final space over the same quantizer — the
    /// contract that lets the runtime keep one long-lived catalog instead
    /// of rebuilding it per tick.
    #[test]
    fn dht_mapper_deltas_match_fresh_build(
        seed in 0u64..1_000_000,
        nodes in 4usize..24,
        ops in 1usize..60,
    ) {
        let mut rng = derive_rng(seed, 0xD47D);
        let coords: Vec<Vec<f64>> = (0..nodes)
            .map(|_| vec![rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)])
            .collect();
        let mut attrs = NodeAttrs::idle(nodes);
        for i in 0..nodes as u32 {
            attrs.set(NodeId(i), Attr::CpuLoad, rng.gen_range(0.0..1.0));
        }
        let mut space = CostSpaceBuilder::latency_load_space_scaled(
            &VivaldiEmbedding::exact(coords),
            &attrs,
            100.0,
        );
        // Fixed bounds with headroom for every churned value, so both
        // mappers quantize identically no matter where the deltas end up.
        let quantizer =
            Quantizer::new(vec![-50.0, -50.0, -1.0], vec![250.0, 250.0, 101.0], 12);
        let mut maintained = DhtMapper::build_with_quantizer(&space, quantizer.clone(), 8);
        for _ in 0..ops {
            let node = NodeId(rng.gen_range(0..nodes as u32));
            if rng.gen_range(0..4) == 0 {
                let c = vec![rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)];
                if space.set_vector_coord(node, &c) {
                    maintained.update_node(&space, node);
                }
            } else {
                attrs.set(node, Attr::CpuLoad, rng.gen_range(-0.1..1.1));
                if space.update_scalars(node, &attrs) {
                    maintained.update_node(&space, node);
                }
            }
        }
        let mut fresh = DhtMapper::build_with_quantizer(&space, quantizer, 8);
        prop_assert!(maintained.len() == fresh.len());
        for _ in 0..16 {
            let ideal = space
                .ideal_point(&[rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)]);
            let (m, _) = maintained.map_point(&space, &ideal);
            let (f, _) = fresh.map_point(&space, &ideal);
            prop_assert!(
                m == f,
                "maintained {m:?} != fresh {f:?} for {ideal:?} (seed {seed})"
            );
        }
    }

    /// The B-tree [`DhtRing`] must be **behaviourally identical** to the
    /// seed `Vec` ring over random interleavings of joins (including forced
    /// key collisions, so the clockwise probe is exercised), leaves,
    /// successor/predecessor queries, neighbor walks at boundary counts,
    /// and routed lookups — the contract that made swapping the membership
    /// structure a pure `O(n) → O(log n)` cost change.
    #[test]
    fn btree_ring_matches_vec_reference(
        seed in 0u64..1_000_000,
        ops in 20usize..140,
    ) {
        let mut rng = derive_rng(seed, 0xB7EE);
        let mut ring = DhtRing::new(DhtConfig::default());
        let mut reference = VecRing::default();
        let mut next_member: u32 = 0;
        let mut live: Vec<u32> = Vec::new();
        for _ in 0..ops {
            match rng.gen_range(0..8) {
                0..=2 => {
                    // Join; 1 in 3 reuses an occupied key to force probing.
                    let key: RingKey = if !reference.members.is_empty() && rng.gen_range(0..3) == 0
                    {
                        reference.members[rng.gen_range(0..reference.members.len())].0
                    } else if rng.gen_range(0..8) == 0 {
                        // Occasionally probe the key-space end (wrap case).
                        RingKey::MAX - rng.gen_range(0..2) as RingKey
                    } else {
                        rng.gen()
                    };
                    let kb = ring.join(key, next_member);
                    let kv = reference.join(key, next_member);
                    prop_assert_eq!(kb, kv);
                    live.push(next_member);
                    next_member += 1;
                }
                3 => {
                    // Leave a live member — or a never-joined one (no-op).
                    let member = if !live.is_empty() && rng.gen_range(0..5) > 0 {
                        live.swap_remove(rng.gen_range(0..live.len()))
                    } else {
                        next_member + 1000
                    };
                    prop_assert_eq!(ring.leave(member), reference.leave(member));
                }
                4 => {
                    let key: RingKey = rng.gen();
                    prop_assert_eq!(ring.successor(key), reference.successor(key));
                    prop_assert_eq!(ring.predecessor(key), reference.predecessor(key));
                }
                5 => {
                    // Neighbors at the membership-boundary counts the seed
                    // walk's disjoint-arc argument is most delicate at.
                    let key: RingKey = if !reference.members.is_empty() && rng.gen_range(0..2) == 0
                    {
                        reference.members[rng.gen_range(0..reference.members.len())].0
                    } else {
                        rng.gen()
                    };
                    let n = reference.members.len();
                    for count in [n.saturating_sub(1), n, n + 1, rng.gen_range(0..n + 3)] {
                        prop_assert_eq!(ring.neighbors(key, count), reference.neighbors(key, count));
                    }
                }
                _ => {
                    // Routed lookup: owner must equal the reference
                    // successor (hops are an implementation detail of the
                    // finger walk, but both rings share it — compare too).
                    if reference.members.is_empty() {
                        prop_assert!(ring.lookup(0, 0).is_none());
                        continue;
                    }
                    let start = reference.members[rng.gen_range(0..reference.members.len())].0;
                    let target: RingKey = rng.gen();
                    let out = ring.lookup(start, target).unwrap();
                    let truth = reference.successor(target).unwrap();
                    prop_assert_eq!((out.owner_key, out.owner), truth);
                }
            }
            prop_assert_eq!(ring.len(), reference.members.len());
        }
        // Final sweep: the full ring orders identically.
        let btree_members: Vec<(RingKey, u32)> = ring.iter().collect();
        prop_assert_eq!(btree_members, reference.members);
    }

    /// The routed control plane, driven over the simulated underlay to
    /// quiescence after every mutation, must hold **exactly** the catalog
    /// state of an omniscient shared-structure catalog fed the same
    /// operation sequence — same registered keys, same ring order, same
    /// lookup answers — across random topologies, register / churn /
    /// unregister interleavings, scan widths, and link-latency functions.
    /// This is the contract that makes `MapperBackend::Routed` a drop-in
    /// for `MapperBackend::Dht` whose only observable difference is the
    /// experienced-latency accounting.
    #[test]
    fn routed_catalog_matches_omniscient_after_quiescence(
        seed in 0u64..1_000_000,
        nodes in 3u32..32,
        ops in 1usize..48,
    ) {
        let mut rng = derive_rng(seed, 0x207ED);
        let scan = 1 + (seed % 8) as usize;
        let fresh = || CoordinateCatalog::new(
            HilbertCurve::new(2, 8),
            Quantizer::new(vec![0.0, 0.0], vec![1.0, 1.0], 8),
            scan,
        );
        // Seed-derived symmetric link latency with a zero diagonal.
        let salt = seed.wrapping_mul(0x9E37_79B9);
        let link = move |a: u32, b: u32| -> f64 {
            if a == b {
                return 0.0;
            }
            let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
            1.0 + ((lo.wrapping_mul(2_654_435_761).wrapping_add(hi.wrapping_mul(40_503))
                ^ salt) % 120) as f64
        };
        let mut routed = RoutedCatalog::from_catalog(fresh(), ProtoConfig::default());
        let mut omni = fresh();
        let mut live: Vec<u32> = Vec::new();
        let mut next_member: u32 = 0;
        let coord = |rng: &mut _| -> Vec<f64> {
            let r: &mut rand::rngs::StdRng = rng;
            vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)]
        };
        // Bootstrap membership over the wire: the very first member has no
        // owner to talk to, so it self-installs (direct), mirroring a DHT
        // bootstrap node; everyone after joins through the protocol.
        for _ in 0..nodes {
            let c = coord(&mut rng);
            if routed.catalog().is_empty() {
                routed.register_direct(next_member, c.clone());
            } else {
                let at = routed.now();
                prop_assert!(
                    routed.register_routed(next_member, c.clone(), at, &link).is_some()
                );
                routed.run_to_quiescence(&link);
            }
            omni.insert(next_member, c);
            live.push(next_member);
            next_member += 1;
        }
        for _ in 0..ops {
            match rng.gen_range(0..5) {
                // Churn: a live member refines its coordinate.
                0..=1 => {
                    let m = live[rng.gen_range(0..live.len())];
                    let c = coord(&mut rng);
                    let at = routed.now();
                    prop_assert!(routed.register_routed(m, c.clone(), at, &link).is_some());
                    routed.run_to_quiescence(&link);
                    omni.insert(m, c);
                }
                // Join of a brand-new member.
                2 => {
                    let c = coord(&mut rng);
                    let at = routed.now();
                    prop_assert!(
                        routed.register_routed(next_member, c.clone(), at, &link).is_some()
                    );
                    routed.run_to_quiescence(&link);
                    omni.insert(next_member, c);
                    live.push(next_member);
                    next_member += 1;
                }
                // Departure over the wire (the last member must stay: an
                // unregistration has no surviving owner to address).
                3 if live.len() > 1 => {
                    let m = live.swap_remove(rng.gen_range(0..live.len()));
                    let at = routed.now();
                    prop_assert!(routed.unregister_routed(m, at, &link).is_some());
                    routed.run_to_quiescence(&link);
                    omni.remove(m);
                }
                // Lookup probe mid-sequence.
                _ => {
                    let target = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
                    let origin = live[rng.gen_range(0..live.len())];
                    let truth = omni.lookup_closest_traced(&target).unwrap();
                    let at = routed.now();
                    let res = routed.lookup_quiescent(origin, &target, at, &link).unwrap();
                    prop_assert_eq!(res.member, truth.member);
                    prop_assert!(res.hops == 0 || res.latency_ms > 0.0);
                }
            }
            prop_assert!(routed.is_quiescent());
        }
        // Structural equivalence: identical membership under identical
        // post-collision keys, in identical ring order.
        prop_assert_eq!(routed.catalog().len(), omni.len());
        let routed_members: Vec<(RingKey, u32)> = routed.catalog().ring().iter().collect();
        let omni_members: Vec<(RingKey, u32)> = omni.ring().iter().collect();
        prop_assert_eq!(routed_members, omni_members);
        for &m in &live {
            prop_assert_eq!(routed.catalog().registered_key(m), omni.registered_key(m));
        }
        // Behavioural equivalence: a final sweep of lookups agrees.
        for _ in 0..12 {
            let target = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let origin = live[rng.gen_range(0..live.len())];
            let truth = omni.lookup_closest_traced(&target).unwrap();
            let res = routed
                .lookup_quiescent(origin, &target, routed.now(), &link)
                .unwrap();
            prop_assert_eq!(res.member, truth.member);
        }
        // A healthy underlay never times out, retries, or defers.
        prop_assert_eq!(routed.stats().timeouts, 0);
        prop_assert_eq!(routed.stats().retries, 0);
        prop_assert_eq!(routed.stats().deferred, 0);
    }

    /// Statistical plan costs reported by the DP agree with the
    /// tree-walking cost model for arbitrary selectivities.
    #[test]
    fn dp_cost_model_consistency(
        sels in proptest::collection::vec(0.001f64..1.0, 6),
        rates in proptest::collection::vec(1.0f64..50.0, 4),
    ) {
        let ids: Vec<StreamId> = (0..4).map(StreamId).collect();
        let mut stats = StatsCatalog::new(0.1);
        for (i, &r) in rates.iter().enumerate() {
            stats.set_rate(StreamId(i as u32), r);
        }
        let mut k = 0;
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                stats.set_join_selectivity(StreamId(i), StreamId(j), sels[k]);
                k += 1;
            }
        }
        let (plan, cost) = dp_best_plan(&stats, &ids);
        let walked = stats.statistical_cost(&plan);
        prop_assert!((walked - cost).abs() < 1e-6 * walked.max(1.0));
        // And the DP minimum matches exhaustive enumeration.
        let exhaustive = all_join_trees(&ids)
            .into_iter()
            .map(|t| stats.statistical_cost(&t))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((exhaustive - cost).abs() < 1e-6 * exhaustive.max(1.0));
    }
}
