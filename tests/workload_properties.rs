//! Property tests for the query lifecycle: deploy/undeploy symmetry and
//! reuse-refcount hygiene under arbitrary arrival/departure interleavings.

use proptest::prelude::*;
use rand::Rng;

use sbon::core::multiquery::ReuseScope;
use sbon::core::optimizer::{IntegratedOptimizer, OptimizerConfig};
use sbon::netsim::load::ChurnProcess;
use sbon::netsim::rng::derive_rng;
use sbon::overlay::{CircuitHandle, LinkTraffic, OverlayRuntime, RuntimeConfig};
use sbon::prelude::*;

fn world(seed: u64) -> Topology {
    transit_stub::generate(&TransitStubConfig::with_total_nodes(60), seed)
}

/// A small pool of queries over shared producer sets, so signatures collide
/// and reuse (including chains) actually happens.
fn query_pool(topo: &Topology) -> Vec<QuerySpec> {
    let hosts = topo.host_candidates();
    let p = [hosts[0], hosts[7], hosts[14], hosts[21]];
    let consumers = [hosts[30], hosts[35], hosts[40], hosts[45]];
    let mut pool = Vec::new();
    for &c in &consumers {
        pool.push(QuerySpec::join_star(&p[..2], c, 10.0, 0.02));
        pool.push(QuerySpec::join_star(&p[..3], c, 10.0, 0.02));
        pool.push(QuerySpec::join_star(&p, c, 10.0, 0.02));
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// deploy → undeploy → redeploy is bit-identical to deploying once:
    /// instantaneous usage, the redeployed placement, and the cost space
    /// are all unchanged — with reuse both off and on (alternating by
    /// seed), against a non-empty background workload.
    #[test]
    fn deploy_undeploy_redeploy_is_bit_identical(
        seed in 0u64..1_000_000,
        background in 0usize..3,
        probe in 0usize..12,
    ) {
        let topo = world(seed);
        let reuse = if seed % 2 == 0 { ReuseScope::None } else { ReuseScope::All };
        let mut rt = OverlayRuntime::new(
            &topo,
            seed,
            RuntimeConfig::builder()
                .horizon_ms(5_000.0)
                .churn(ChurnProcess::None)
                .reuse(reuse)
                .build(),
        );
        let pool = query_pool(&topo);
        for q in pool.iter().take(background) {
            prop_assert!(rt.deploy(q.clone()).is_some());
        }
        let space_before: Vec<Vec<u64>> = rt
            .space()
            .points()
            .iter()
            .map(|p| p.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        let usage_before = rt.instantaneous_usage().to_bits();

        let q = pool[probe % pool.len()].clone();
        let h = rt.deploy(q.clone()).unwrap();
        let usage_with = rt.instantaneous_usage().to_bits();
        let placement_first = rt.placement(h).unwrap().clone();

        prop_assert!(rt.undeploy(h));
        prop_assert_eq!(rt.instantaneous_usage().to_bits(), usage_before);
        prop_assert_eq!(rt.retained_shared_subtrees(), 0);

        let h2 = rt.deploy(q).unwrap();
        prop_assert_eq!(rt.placement(h2).unwrap(), &placement_first);
        prop_assert_eq!(rt.instantaneous_usage().to_bits(), usage_with);
        let space_after: Vec<Vec<u64>> = rt
            .space()
            .points()
            .iter()
            .map(|p| p.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        prop_assert_eq!(space_before, space_after);
    }

    /// Charging a circuit into the underlay traffic view and discharging it
    /// leaves every per-edge rate bit-identical to never having charged —
    /// also with other circuits charged before/after in arbitrary order.
    #[test]
    fn traffic_discharge_is_bit_identical(
        seed in 0u64..1_000_000,
        order in 0usize..6,
    ) {
        let topo = world(seed);
        let latency = all_pairs_latency(&topo.graph);
        let embedding = VivaldiConfig::default().embed(&latency, seed);
        let mut rng = derive_rng(seed, 0x7afc);
        let loads = LoadModel::Random { lo: 0.0, hi: 0.5 }.generate(topo.num_nodes(), &mut rng);
        let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);
        let optimizer = IntegratedOptimizer::new(OptimizerConfig::default());
        let placed: Vec<_> = query_pool(&topo)
            .into_iter()
            .skip(order)
            .take(3)
            .map(|q| optimizer.optimize(&q, &space, &latency).unwrap())
            .collect();

        let edge_bits = |t: &LinkTraffic| -> Vec<u64> {
            (0..topo.graph.num_edges()).map(|e| t.rate_on(e).to_bits()).collect()
        };
        let mut traffic = LinkTraffic::zero(&topo);
        traffic.charge_circuit(&topo, &placed[0].circuit, &placed[0].placement);
        let background = edge_bits(&traffic);
        // Charge the probe, overlay one more circuit, then discharge the
        // probe: the result must equal background + the later circuit.
        traffic.charge_circuit(&topo, &placed[1].circuit, &placed[1].placement);
        traffic.charge_circuit(&topo, &placed[2].circuit, &placed[2].placement);
        traffic.discharge_circuit(&topo, &placed[1].circuit, &placed[1].placement);
        let mut reference = LinkTraffic::zero(&topo);
        reference.charge_circuit(&topo, &placed[0].circuit, &placed[0].placement);
        reference.charge_circuit(&topo, &placed[2].circuit, &placed[2].placement);
        prop_assert_eq!(edge_bits(&traffic), edge_bits(&reference));
        // And discharging everything restores the zero state.
        traffic.discharge_circuit(&topo, &placed[0].circuit, &placed[0].placement);
        traffic.discharge_circuit(&topo, &placed[2].circuit, &placed[2].placement);
        prop_assert_eq!(edge_bits(&traffic), edge_bits(&LinkTraffic::zero(&topo)));
        let _ = background;
    }

    /// Under random arrival/departure interleavings with reuse enabled —
    /// interleaved with simulation ticks and churn — shared-service
    /// refcounts never go negative (an underflow panics inside the
    /// registry) and fully drain to zero once every query departs, with
    /// usage back at the empty baseline.
    #[test]
    fn random_interleavings_drain_refcounts_to_zero(
        seed in 0u64..1_000_000,
        ops in 8usize..60,
    ) {
        let topo = world(seed);
        let mut rt = OverlayRuntime::new(
            &topo,
            seed,
            RuntimeConfig::builder()
                // Effectively unbounded horizon: the interleaving decides
                // how many ticks actually run.
                .horizon_ms(1e12)
                .churn(ChurnProcess::SparseWalk { nodes_per_tick: 4, std_dev: 0.1 })
                .reuse(ReuseScope::All)
                .build(),
        );
        let baseline = rt.instantaneous_usage().to_bits();
        let pool = query_pool(&topo);
        let mut rng = derive_rng(seed, 0x0b5e);
        let mut session = rt.start_run();
        let mut live: Vec<CircuitHandle> = Vec::new();
        for _ in 0..ops {
            match rng.gen_range(0..4) {
                // Arrival.
                0 | 1 => {
                    let q = pool[rng.gen_range(0..pool.len())].clone();
                    if let Some(h) = rt.deploy(q) {
                        live.push(h);
                    }
                }
                // Departure (when anyone is live).
                2 => {
                    if !live.is_empty() {
                        let h = live.swap_remove(rng.gen_range(0..live.len()));
                        prop_assert!(rt.undeploy(h));
                    }
                }
                // Let the simulation tick (churn + usage accounting over
                // whatever is live and retained).
                _ => {
                    prop_assert!(rt.advance_ticks(&mut session, 1));
                }
            }
            let mq = rt.multiquery().expect("reuse registry active");
            // The gauge invariants that must hold at every step.
            prop_assert!(mq.num_retained() >= rt.retained_shared_subtrees());
            if live.is_empty() {
                prop_assert_eq!(rt.active_queries(), 0);
            }
        }
        // Scenario end: everyone departs.
        for h in live.drain(..) {
            prop_assert!(rt.undeploy(h));
        }
        let mq = rt.multiquery().unwrap();
        prop_assert_eq!(mq.total_subscriptions(), 0);
        prop_assert_eq!(mq.num_instances(), 0);
        prop_assert_eq!(mq.num_retained(), 0);
        prop_assert_eq!(rt.retained_shared_subtrees(), 0);
        prop_assert_eq!(rt.active_queries(), 0);
        prop_assert_eq!(rt.instantaneous_usage().to_bits(), baseline);
    }
}
