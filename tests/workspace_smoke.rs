//! Workspace-wiring smoke test: exercises the `sbon` facade's re-export path
//! end-to-end (topology from `sbon::netsim`, cost space from `sbon::coords` +
//! `sbon::core`, one circuit placed via `sbon::core::IntegratedOptimizer`),
//! so a broken re-export or prelude entry can never ship.

use sbon::prelude::*;

#[test]
fn facade_reexports_support_an_end_to_end_placement() {
    // Build a small world purely through the facade paths.
    let topo = transit_stub::generate(&TransitStubConfig::with_total_nodes(60), 7);
    let latency = all_pairs_latency(&topo.graph);

    let embedding = VivaldiConfig::default().embed(&latency, 7);
    let mut rng = rng_from_seed(7);
    let loads = LoadModel::Random { lo: 0.0, hi: 0.8 }.generate(topo.num_nodes(), &mut rng);
    let space = CostSpaceBuilder::latency_load_space(&embedding, &loads);

    let hosts = topo.host_candidates();
    assert!(hosts.len() >= 5, "transit-stub world must expose host candidates");
    let query = QuerySpec::join_star(&[hosts[0], hosts[1], hosts[2]], hosts[3], 10.0, 0.5);

    let optimizer = IntegratedOptimizer::new(OptimizerConfig::default());
    let outcome = optimizer.optimize(&query, &space, &latency).unwrap();
    assert!(outcome.cost.network_usage > 0.0, "placed circuit must consume network");
    assert!(outcome.cost.network_usage.is_finite());
}

#[test]
fn facade_module_paths_match_member_crates() {
    // Each facade module must be the same crate as the `sbon_*` member it
    // re-exports; referencing one type through both paths proves it.
    let a: sbon::netsim::graph::NodeId = NodeId(3);
    let b: NodeId = a;
    assert_eq!(b.0, 3);

    use sbon::hilbert::SpaceFillingCurve;
    let curve = sbon::hilbert::HilbertCurve::new(2, 4);
    let cell = curve.decode(curve.encode(&[5, 9]));
    assert_eq!(cell, vec![5, 9]);

    let plan: Option<LogicalPlan> = None;
    assert!(plan.is_none());

    let stats = StatsCatalog::new(0.1);
    let _: &sbon::query::stats::StatsCatalog = &stats;
}
